package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"finbench"
	"finbench/internal/rng"
	"finbench/internal/serve/stream"
)

// Streaming mode: N concurrent SSE subscribers with seed-deterministic
// subscription sets, measuring tick→push staleness from each event's
// echoed tick timestamp and — with Verify — recomputing every pushed
// entry cold against the library. An entry echoes the exact inputs it
// was priced from, so verification needs no knowledge of the server's
// universe or tick sequence: reprice a one-option LevelAdvanced batch at
// the echoed inputs (composition independence makes that bit-identical
// to the server's mega-batch) and the scalar greeks, then compare every
// float bit-for-bit.
//
// SlowClients additionally run deliberately slow subscribers (a pause
// after every event) to provoke the server's backpressure: their buffers
// overflow, deltas drop, and the protocol's promise is that the next
// delivered state event is a full snapshot with resync=true — which is
// asserted, per slow client.

// streamSubTag namespaces the subscription-choice rng stream.
const streamSubTag = 0x5feed

// StreamOptions configures a streaming run; zero values select defaults.
type StreamOptions struct {
	BaseURL  string
	Clients  int           // concurrent well-behaved subscribers (default 4)
	Duration time.Duration // how long each client listens (default 3s)

	// Universe is the server's contract universe (subscription ranges are
	// drawn inside it; default 1024). SubSize is each client's contract
	// count (default universe/4, min 1).
	Universe int
	SubSize  int

	Seed   int64
	Verify bool

	// SlowClients run deliberately slow subscribers over the whole
	// universe: after the first greeks delta each stalls once for
	// SlowPause (default 1200ms — must stay under the server's stream
	// write timeout, or the server rightly disconnects the stall instead),
	// then reads flat out. The stall overflows the per-subscriber buffer
	// (kernel socket buffers can absorb a merely-paced reader, so a full
	// stop is the reliable provocation) and the client must then observe a
	// resync=true snapshot — the backpressure contract.
	SlowClients int
	SlowPause   time.Duration
}

func (o StreamOptions) withDefaults() StreamOptions {
	if o.Clients <= 0 {
		o.Clients = 4
	}
	if o.Duration <= 0 {
		o.Duration = 3 * time.Second
	}
	if o.Universe <= 0 {
		o.Universe = 1024
	}
	if o.SubSize <= 0 {
		o.SubSize = o.Universe / 4
	}
	if o.SubSize < 1 {
		o.SubSize = 1
	}
	if o.SubSize > o.Universe {
		o.SubSize = o.Universe
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.SlowPause <= 0 {
		o.SlowPause = 1200 * time.Millisecond
	}
	return o
}

// StreamReport aggregates a streaming run.
type StreamReport struct {
	Clients     int `json:"clients"`
	SlowClients int `json:"slow_clients"`

	Hellos    uint64 `json:"hellos"`
	Snapshots uint64 `json:"snapshots"`
	Greeks    uint64 `json:"greeks_events"`
	Resyncs   uint64 `json:"resyncs"`
	Goodbyes  uint64 `json:"goodbyes"`
	Degraded  uint64 `json:"degraded_events"`
	Entries   uint64 `json:"entries"`

	Verified uint64 `json:"verified"`
	Mismatch uint64 `json:"mismatch"`

	// StalenessP50MS/P99MS are tick→receive latencies measured from each
	// event's echoed tick wall clock (valid when client and server share
	// a clock — the e2e harness runs both on one host). Slow clients are
	// excluded: their lag is the experiment, not the server's latency.
	StalenessP50MS float64 `json:"staleness_p50_ms"`
	StalenessP99MS float64 `json:"staleness_p99_ms"`

	// SlowResynced counts slow clients that observed at least one
	// resync=true snapshot (the backpressure contract).
	SlowResynced int `json:"slow_resynced"`

	Errors map[string]int `json:"errors,omitempty"`
}

// Events is the total state-bearing events received.
func (r *StreamReport) Events() uint64 { return r.Snapshots + r.Greeks }

// String renders the report for logs.
func (r *StreamReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stream clients=%d slow=%d hellos=%d snapshots=%d greeks=%d resyncs=%d goodbyes=%d entries=%d",
		r.Clients, r.SlowClients, r.Hellos, r.Snapshots, r.Greeks, r.Resyncs, r.Goodbyes, r.Entries)
	if r.Degraded > 0 {
		fmt.Fprintf(&b, " degraded=%d", r.Degraded)
	}
	if r.Verified > 0 || r.Mismatch > 0 {
		fmt.Fprintf(&b, " verified=%d mismatch=%d", r.Verified, r.Mismatch)
	}
	if r.Events() > 0 {
		fmt.Fprintf(&b, " staleness_p50=%.1fms p99=%.1fms", r.StalenessP50MS, r.StalenessP99MS)
	}
	if r.SlowClients > 0 {
		fmt.Fprintf(&b, " slow_resynced=%d", r.SlowResynced)
	}
	errs := make([]string, 0, len(r.Errors))
	for e := range r.Errors {
		errs = append(errs, e)
	}
	sort.Strings(errs)
	for _, e := range errs {
		fmt.Fprintf(&b, " error[%s]=%d", e, r.Errors[e])
	}
	return b.String()
}

// streamClientResult is one subscriber's tally.
type streamClientResult struct {
	hellos, snapshots, greeks, resyncs, goodbyes, degraded uint64
	entries, verified, mismatch                            uint64
	stalenessMS                                            []float64
	sawResync                                              bool
	err                                                    error
}

// StreamRun drives the streaming load: Clients+SlowClients concurrent
// subscribers for Duration each.
func StreamRun(o StreamOptions) (*StreamReport, error) {
	o = o.withDefaults()
	total := o.Clients + o.SlowClients
	results := make([]streamClientResult, total)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = runStreamClient(o, i, i >= o.Clients)
		}(i)
	}
	wg.Wait()

	rep := &StreamReport{Clients: o.Clients, SlowClients: o.SlowClients}
	var staleness []float64
	for i := range results {
		res := &results[i]
		rep.Hellos += res.hellos
		rep.Snapshots += res.snapshots
		rep.Greeks += res.greeks
		rep.Resyncs += res.resyncs
		rep.Goodbyes += res.goodbyes
		rep.Degraded += res.degraded
		rep.Entries += res.entries
		rep.Verified += res.verified
		rep.Mismatch += res.mismatch
		if i < o.Clients {
			staleness = append(staleness, res.stalenessMS...)
		} else if res.sawResync {
			rep.SlowResynced++
		}
		if res.err != nil {
			if rep.Errors == nil {
				rep.Errors = make(map[string]int)
			}
			rep.Errors[res.err.Error()]++
		}
	}
	rep.StalenessP50MS = percentile(staleness, 0.50)
	rep.StalenessP99MS = percentile(staleness, 0.99)
	return rep, nil
}

// subscriptionRange picks client i's seed-deterministic contiguous
// contract range inside the universe.
func subscriptionRange(o StreamOptions, i int) (lo, hi int) {
	s := rng.NewStream(i, rng.DeriveSeed(uint64(o.Seed), streamSubTag))
	u := make([]float64, 1)
	s.Uniform(u)
	span := o.Universe - o.SubSize
	lo = int(u[0] * float64(span+1))
	if lo > span {
		lo = span
	}
	return lo, lo + o.SubSize - 1
}

// runStreamClient is one subscriber: subscribe, read frames until the
// duration elapses (the request context deadline ends the body read) or
// the server says goodbye, tallying and optionally verifying everything.
func runStreamClient(o StreamOptions, id int, slow bool) streamClientResult {
	var res streamClientResult
	lo, hi := subscriptionRange(o, id)
	if slow {
		// The whole universe: the biggest frames, so the one stall below
		// reliably fills every buffer between hub and reader.
		lo, hi = 0, o.Universe-1
	}
	url := fmt.Sprintf("%s/stream?contracts=%d-%d", o.BaseURL, lo, hi)
	ctx, cancel := context.WithTimeout(context.Background(), o.Duration)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		res.err = err
		return res
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		res.err = fmt.Errorf("subscribe: %w", err)
		return res
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		res.err = fmt.Errorf("subscribe: status %d", resp.StatusCode)
		return res
	}

	verifyBatch := finbench.NewBatch(1)
	stalled := !slow // a slow client owes exactly one stall
	fr := stream.NewFrameReader(resp.Body)
	for {
		f, err := fr.Next()
		if err != nil {
			// The context deadline (run over) or a server-side disconnect
			// ends the read; both are normal stream ends here.
			return res
		}
		switch f.Event {
		case stream.EventHello:
			res.hellos++
		case stream.EventGoodbye:
			res.goodbyes++
			return res
		case stream.EventSnapshot, stream.EventGreeks:
			received := time.Now().UnixNano()
			var ev stream.Event
			if err := json.Unmarshal(f.Data, &ev); err != nil {
				res.err = fmt.Errorf("decode %s event: %w", f.Event, err)
				return res
			}
			if f.Event == stream.EventSnapshot {
				res.snapshots++
				if ev.Resync {
					res.resyncs++
					res.sawResync = true
				}
			} else {
				res.greeks++
			}
			if ev.Degraded {
				res.degraded++
			}
			res.entries += uint64(len(ev.Contracts))
			res.stalenessMS = append(res.stalenessMS, float64(received-ev.TickNS)/1e6)
			if o.Verify {
				verifyEntries(&res, verifyBatch, ev.Contracts)
			}
			if !stalled && f.Event == stream.EventGreeks {
				// The one deliberate stall: stop reading entirely so the
				// pipeline backs up and the subscriber buffer overflows,
				// then resume flat out to reach the resync snapshot.
				stalled = true
				select {
				case <-ctx.Done():
					return res
				case <-time.After(o.SlowPause):
				}
			}
		}
	}
}

// verifyEntries recomputes every entry cold from its echoed inputs and
// compares bit-for-bit.
func verifyEntries(res *streamClientResult, b *finbench.Batch, entries []stream.Entry) {
	for i := range entries {
		e := &entries[i]
		b.Spots[0], b.Strikes[0], b.Expiries[0] = e.Spot, e.Strike, e.Expiry
		m := finbench.Market{Rate: e.Rate, Volatility: e.Vol}
		if err := finbench.PriceBatchCtx(context.Background(), b, m, finbench.LevelAdvanced); err != nil {
			res.mismatch++
			continue
		}
		wantPrice := b.Calls[0]
		opt := finbench.Option{Type: finbench.Call, Style: finbench.European,
			Spot: e.Spot, Strike: e.Strike, Expiry: e.Expiry}
		if e.Type == "put" {
			wantPrice = b.Puts[0]
			opt.Type = finbench.Put
		}
		g, err := finbench.ComputeGreeks(opt, m)
		if err != nil {
			res.mismatch++
			continue
		}
		wantDelta, wantTheta, wantRho := g.DeltaCall, g.ThetaCall, g.RhoCall
		if e.Type == "put" {
			wantDelta, wantTheta, wantRho = g.DeltaPut, g.ThetaPut, g.RhoPut
		}
		if bitsEq(e.Price, wantPrice) && bitsEq(e.Delta, wantDelta) &&
			bitsEq(e.Gamma, g.Gamma) && bitsEq(e.Vega, g.Vega) &&
			bitsEq(e.Theta, wantTheta) && bitsEq(e.Rho, wantRho) {
			res.verified++
		} else {
			res.mismatch++
		}
	}
}

// bitsEq is the exact-bits comparison the streaming invariant demands —
// not approximate equality.
func bitsEq(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}
