package finbench

import (
	"context"
	"errors"
	"testing"
)

func gridTestBatch(n int) *Batch {
	b := NewBatch(n)
	for i := 0; i < n; i++ {
		b.Spots[i] = 80 + float64(i%41)
		b.Strikes[i] = 70 + float64(i%61)
		b.Expiries[i] = 0.1 + float64(i%10)*0.3
	}
	return b
}

// TestPriceBatchGridMatchesPriceBatch pins the composition-independence
// contract: each grid row must be bit-identical to pricing a standalone
// LevelAdvanced batch with the same shocked inputs.
func TestPriceBatchGridMatchesPriceBatch(t *testing.T) {
	b := gridTestBatch(37)
	rows := []GridRow{
		{Market: Market{Rate: 0.02, Volatility: 0.3}, Scale: 1},
		{Market: Market{Rate: 0.03, Volatility: 0.25}, Scale: 0.8},
		{Market: Market{Rate: 0.01, Volatility: 0.45}, Scale: 1.2},
	}
	perScales := make([]float64, b.Len())
	for i := range perScales {
		perScales[i] = 0.9 + 0.02*float64(i%11)
	}
	rows = append(rows, GridRow{Market: Market{Rate: 0.02, Volatility: 0.3}, Scales: perScales})

	seen := 0
	err := PriceBatchGrid(b, rows, func(r int, calls, puts []float64) error {
		seen++
		ref := NewBatch(b.Len())
		copy(ref.Strikes, b.Strikes)
		copy(ref.Expiries, b.Expiries)
		for i := range ref.Spots {
			s := rows[r].Scale
			if rows[r].Scales != nil {
				s = rows[r].Scales[i]
			}
			ref.Spots[i] = b.Spots[i] * s
		}
		if err := PriceBatch(ref, rows[r].Market, LevelAdvanced); err != nil {
			return err
		}
		for i := range calls {
			if calls[i] != ref.Calls[i] || puts[i] != ref.Puts[i] {
				t.Fatalf("row %d option %d: grid (%v,%v) != batch (%v,%v)",
					r, i, calls[i], puts[i], ref.Calls[i], ref.Puts[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != len(rows) {
		t.Fatalf("onRow ran %d times, want %d", seen, len(rows))
	}
}

// TestPriceBatchGridCtxCancelsBetweenRows proves the per-row cancellation
// checkpoint: cancelling inside onRow stops the evaluation before the
// next row.
func TestPriceBatchGridCtxCancelsBetweenRows(t *testing.T) {
	b := gridTestBatch(8)
	rows := make([]GridRow, 10)
	for r := range rows {
		rows[r] = GridRow{Market: Market{Rate: 0.02, Volatility: 0.3}, Scale: 1}
	}
	ctx, cancel := context.WithCancel(context.Background())
	seen := 0
	err := PriceBatchGridCtx(ctx, b, rows, func(r int, calls, puts []float64) error {
		seen++
		if r == 2 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if seen != 3 {
		t.Fatalf("onRow ran %d times after cancel at row 2, want 3", seen)
	}
}

// TestPriceBatchGridRejectsBadRows pins the input validation: a
// non-positive scale and a mismatched Scales length both fail with
// ErrGridRow before any kernel work.
func TestPriceBatchGridRejectsBadRows(t *testing.T) {
	b := gridTestBatch(4)
	for _, rows := range [][]GridRow{
		{{Market: Market{Rate: 0.02, Volatility: 0.3}}},                              // Scale zero
		{{Market: Market{Rate: 0.02, Volatility: 0.3}, Scale: -1}},                   // negative
		{{Market: Market{Rate: 0.02, Volatility: 0.3}, Scales: []float64{1, 1}}},     // short
		{{Market: Market{Rate: 0.02, Volatility: 0.3}, Scales: []float64{1, 1, 0, 1}}}, // zero entry
	} {
		err := PriceBatchGrid(b, rows, func(int, []float64, []float64) error { return nil })
		if !errors.Is(err, ErrGridRow) {
			t.Fatalf("rows %+v: err = %v, want ErrGridRow", rows, err)
		}
	}
	// An onRow error aborts and surfaces verbatim.
	boom := errors.New("boom")
	err := PriceBatchGrid(b, []GridRow{
		{Market: Market{Rate: 0.02, Volatility: 0.3}, Scale: 1},
	}, func(int, []float64, []float64) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want onRow's error", err)
	}
}
