// Package workload generates the reproducible synthetic inputs the
// benchmark harness prices: option portfolios with parameter ranges typical
// of equity-derivative books, plus the path/step configurations of the
// Monte Carlo, Brownian-bridge and Crank-Nicolson experiments.
//
// The paper does not publish its input distributions (only sizes: "nopt
// options", "path length 256k", "256 underlying prices and 1000 time
// steps"), so ranges here follow the conventions of the public
// Black-Scholes benchmark the reference code matches (spot and strike in
// [10,200), expiry in [0.25,10) years) — the kernels are insensitive to the
// exact distribution, and every generator is seeded for reproducibility.
package workload

import (
	"finbench/internal/layout"
	"finbench/internal/rng"
)

// MarketParams are the rates the paper holds constant across a batch
// ("we assume that r and sig are the same for all options", Sec. IV-A1).
type MarketParams struct {
	// R is the risk-free interest rate.
	R float64
	// Sigma is the implied volatility.
	Sigma float64
}

// DefaultMarket matches the constants commonly used with this benchmark
// family (2% rate, 30% volatility).
var DefaultMarket = MarketParams{R: 0.02, Sigma: 0.30}

// OptionGen generates option batches with uniform parameters in the
// configured ranges.
type OptionGen struct {
	// SMin, SMax bound the spot price.
	SMin, SMax float64
	// XMin, XMax bound the strike price.
	XMin, XMax float64
	// TMin, TMax bound the expiry in years.
	TMin, TMax float64
	// Seed makes generation reproducible.
	Seed uint64
}

// DefaultOptionGen is the generator used by all experiments unless a
// kernel needs something narrower.
var DefaultOptionGen = OptionGen{
	SMin: 10, SMax: 200,
	XMin: 10, XMax: 200,
	TMin: 0.25, TMax: 10,
	Seed: 20120612, // paper submission era, fixed for reproducibility
}

// GenerateAOS produces n options in packed AOS form.
func (g OptionGen) GenerateAOS(n int) layout.AOS {
	s := rng.NewStream(0, g.Seed)
	buf := make([]float64, 3)
	a := layout.NewAOS(n)
	for i := 0; i < n; i++ {
		s.Uniform(buf)
		a.Set(i,
			g.SMin+buf[0]*(g.SMax-g.SMin),
			g.XMin+buf[1]*(g.XMax-g.XMin),
			g.TMin+buf[2]*(g.TMax-g.TMin))
	}
	return a
}

// GenerateSOA produces n options in SOA form (same values as GenerateAOS
// for the same seed).
func (g OptionGen) GenerateSOA(n int) *layout.SOA {
	return g.GenerateAOS(n).ToSOA()
}

// MCConfig sizes a Monte Carlo pricing run (Table II uses path length 256k).
type MCConfig struct {
	// NOpt is the option count.
	NOpt int
	// NPath is the path count per option.
	NPath int
	// Stream selects pre-generated random numbers streamed from memory
	// (true) versus computing them inline (false) — the two Table II rows.
	Stream bool
	Seed   uint64
}

// BridgeConfig sizes a Brownian-bridge run (Fig. 6 uses 64-step paths).
type BridgeConfig struct {
	// Depth is the bridge depth; a path has 2^(Depth+1) steps, so Depth 5
	// gives the paper's 64-step simulation.
	Depth int
	// Sims is the number of simulated paths.
	Sims int
	Seed uint64
}

// Steps returns the step count 2^(Depth+1).
func (b BridgeConfig) Steps() int { return 1 << uint(b.Depth+1) }

// CNConfig sizes a Crank-Nicolson run (Fig. 8 uses 256 prices x 1000 steps).
type CNConfig struct {
	// NPrices is the number of discretized underlying prices (J).
	NPrices int
	// NSteps is the number of time steps (N).
	NSteps int
	// NOpt is the number of options priced.
	NOpt int
	Seed int64
}

// BinomialConfig sizes a binomial-tree run (Fig. 5 uses 1024/2048 steps).
type BinomialConfig struct {
	// Steps is the tree depth N.
	Steps int
	// NOpt is the number of options priced.
	NOpt int
}

// MCBatch is the SOA input/output of the Monte Carlo kernel: option
// parameters in, price and standard error out.
type MCBatch struct {
	S, X, T       []float64
	Price, StdErr []float64
}

// NewMCBatch generates n options for Monte Carlo pricing.
func (g OptionGen) NewMCBatch(n int) *MCBatch {
	soa := g.GenerateSOA(n)
	return &MCBatch{
		S: soa.S, X: soa.X, T: soa.T,
		Price:  make([]float64, n),
		StdErr: make([]float64, n),
	}
}
