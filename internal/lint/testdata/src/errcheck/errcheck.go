// Package errcheck holds seeded violations and clean counterparts for the
// errcheck-lite pass.
package errcheck

import (
	"fmt"
	"os"
	"strings"
)

func work() error { return nil }

func workValue() (int, error) { return 0, nil }

// BadDropped silently drops error results.
func BadDropped(f *os.File) {
	work()      // seeded violation
	f.Close()   // seeded violation
	workValue() // seeded violation
}

// GoodHandled handles, visibly discards, or calls excluded writers. Not
// flagged.
func GoodHandled() error {
	if err := work(); err != nil {
		return err
	}
	_ = work()          // explicit discard is visible in review
	fmt.Println("done") // fmt printers are excluded
	var b strings.Builder
	b.WriteString("x") // in-memory writer never fails: excluded
	return nil
}

// IgnoredBestEffort documents a best-effort call.
func IgnoredBestEffort(f *os.File) {
	// finlint:ignore errcheck best-effort sync on the shutdown path
	f.Sync()
}
