package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the .golden files from current output")

// TestGolden runs each pass over its seeded-violation package under
// testdata/src/<pass>/ and compares the diagnostics against
// testdata/<pass>.golden. Every testdata package contains both positive
// cases (flagged, listed in the golden file) and negative cases (clean
// code plus a finlint:ignore suppression) so both directions are pinned.
func TestGolden(t *testing.T) {
	for _, pass := range Passes() {
		pass := pass
		t.Run(pass.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", pass.Name)
			pkgs, err := Load([]string{dir})
			if err != nil {
				t.Fatalf("Load(%s): %v", dir, err)
			}
			if len(pkgs) != 1 {
				t.Fatalf("Load(%s): got %d packages, want 1", dir, len(pkgs))
			}
			for _, e := range pkgs[0].TypeErrors {
				t.Errorf("testdata must type-check cleanly: %v", e)
			}
			var buf strings.Builder
			for _, d := range Run(pkgs, []*Pass{pass}) {
				fmt.Fprintln(&buf, d)
			}
			got := buf.String()
			goldenPath := filepath.Join("testdata", pass.Name+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			wantBytes, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run `go test ./internal/lint -run TestGolden -update`): %v", err)
			}
			want := string(wantBytes)
			if got != want {
				t.Errorf("diagnostics mismatch for pass %s\n--- got ---\n%s--- want ---\n%s", pass.Name, got, want)
			}
			if strings.TrimSpace(got) == "" {
				t.Errorf("pass %s produced no diagnostics on its seeded violations", pass.Name)
			}
		})
	}
}

// TestGoldenSuppression pins the negative direction explicitly: the clean
// and finlint:ignore'd functions in each testdata package must not appear
// in the golden output.
func TestGoldenSuppression(t *testing.T) {
	for _, pass := range Passes() {
		golden, err := os.ReadFile(filepath.Join("testdata", pass.Name+".golden"))
		if err != nil {
			t.Fatalf("%s: %v", pass.Name, err)
		}
		src, err := os.ReadFile(filepath.Join("testdata", "src", pass.Name, pass.Name+".go"))
		if err != nil {
			t.Fatalf("%s: %v", pass.Name, err)
		}
		// Every line tagged with an inline "// seeded violation" marker
		// must be flagged; count them against golden lines.
		seeded := strings.Count(string(src), "// seeded violation")
		if seeded == 0 {
			t.Errorf("%s: testdata has no seeded violations", pass.Name)
		}
		goldenLines := 0
		for _, line := range strings.Split(strings.TrimSpace(string(golden)), "\n") {
			if line == "" {
				continue
			}
			goldenLines++
			if !strings.Contains(line, "["+pass.Name+"]") {
				t.Errorf("%s: golden line from wrong pass: %s", pass.Name, line)
			}
		}
		if goldenLines < seeded {
			t.Errorf("%s: %d seeded violations but only %d golden diagnostics", pass.Name, seeded, goldenLines)
		}
		if strings.Contains(string(golden), "Ignored") || strings.Contains(string(golden), "Good") {
			// Diagnostics carry file:line only, so this guards messages
			// that quote an identifier from a clean function.
			t.Errorf("%s: golden output references a clean/ignored case:\n%s", pass.Name, golden)
		}
	}
}

func TestSelectPasses(t *testing.T) {
	all, err := SelectPasses("all")
	if err != nil || len(all) != 9 {
		t.Fatalf("SelectPasses(all) = %d passes, err %v; want 9, nil", len(all), err)
	}
	two, err := SelectPasses("floateq, rngshare")
	if err != nil || len(two) != 2 || two[0].Name != "floateq" || two[1].Name != "rngshare" {
		t.Fatalf("SelectPasses subset failed: %v, err %v", two, err)
	}
	if _, err := SelectPasses("nosuchpass"); err == nil {
		t.Fatal("SelectPasses accepted an unknown pass name")
	}
}
