// The benchmarks live in an external test package (finbench_test) so
// they can import internal/bench, which since the servepath experiment
// transitively imports the root package through internal/serve; an
// in-package test would make that a cycle.
package finbench_test

// One testing.B benchmark per paper artifact (DESIGN.md experiment index).
// Each benchmark reports host throughput in the figure's natural unit via
// ReportMetric, so `go test -bench=. -benchmem` regenerates the host-side
// ladder of every table and figure. The modelled SNB-EP/KNC comparison is
// produced by `go run ./cmd/finbench run` (or TestModelExperiments below).

import (
	"testing"

	"finbench"
	"finbench/internal/bench"
	"finbench/internal/binomial"
	"finbench/internal/blackscholes"
	"finbench/internal/brownian"
	"finbench/internal/cranknicolson"
	"finbench/internal/montecarlo"
	"finbench/internal/rng"
	"finbench/internal/workload"
)

var bmkt = workload.MarketParams{R: 0.05, Sigma: 0.2}

// --- Fig. 4: Black-Scholes ---

func benchBS(b *testing.B, run func(n int)) {
	const n = 200000
	run(n) // warm-up
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(n)
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mopts/s")
}

func BenchmarkFig4BlackScholesBasicAOS(b *testing.B) {
	a := workload.DefaultOptionGen.GenerateAOS(200000)
	benchBS(b, func(n int) { blackscholes.Basic(a, bmkt, 8, nil) })
}

func BenchmarkFig4BlackScholesIntermediateSOA(b *testing.B) {
	s := workload.DefaultOptionGen.GenerateSOA(200000)
	benchBS(b, func(n int) { blackscholes.Intermediate(s, bmkt, 8, nil) })
}

func BenchmarkFig4BlackScholesAdvancedVML(b *testing.B) {
	s := workload.DefaultOptionGen.GenerateSOA(200000)
	benchBS(b, func(n int) { blackscholes.Advanced(s, bmkt, 8, nil) })
}

// --- Fig. 5: binomial tree (N = 1024) ---

func benchBinomial(b *testing.B, run func()) {
	const nopt = 64
	run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.ReportMetric(float64(nopt)*float64(b.N)/b.Elapsed().Seconds()/1e3, "Kopts/s")
}

func BenchmarkFig5BinomialBasic(b *testing.B) {
	g := workload.DefaultOptionGen
	g.TMax = 3
	a := g.GenerateAOS(64)
	benchBinomial(b, func() { binomial.Basic(a, 1024, bmkt, 8, nil) })
}

func BenchmarkFig5BinomialIntermediate(b *testing.B) {
	g := workload.DefaultOptionGen
	g.TMax = 3
	a := g.GenerateAOS(64)
	benchBinomial(b, func() { binomial.Intermediate(a, 1024, bmkt, 8, nil) })
}

func BenchmarkFig5BinomialAdvancedTiled(b *testing.B) {
	g := workload.DefaultOptionGen
	g.TMax = 3
	a := g.GenerateAOS(64)
	benchBinomial(b, func() { binomial.Advanced(a, 1024, bmkt, 8, 16, false, nil) })
}

func BenchmarkFig5BinomialAdvancedUnrolled(b *testing.B) {
	g := workload.DefaultOptionGen
	g.TMax = 3
	a := g.GenerateAOS(64)
	benchBinomial(b, func() { binomial.Advanced(a, 1024, bmkt, 8, 16, true, nil) })
}

// --- Fig. 6: Brownian bridge (64 steps) ---

func benchBridge(b *testing.B, sims int, run func()) {
	run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.ReportMetric(float64(sims)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mpaths/s")
}

func BenchmarkFig6BridgeBasicStreamed(b *testing.B) {
	br := brownian.New(5, 1)
	const sims = 32768
	z := brownian.RandomsScalar(rng.NewStream(0, 1), sims, br.Steps)
	out := make([]float64, sims*br.PathLen())
	benchBridge(b, sims, func() { br.RefScalar(z, out, sims, nil) })
}

func BenchmarkFig6BridgeIntermediateSIMD(b *testing.B) {
	br := brownian.New(5, 1)
	const sims = 32768
	z := brownian.RandomsBlocked(rng.NewStream(0, 1), sims, br.Steps, 8)
	out := make([]float64, sims*br.PathLen())
	benchBridge(b, sims, func() { br.Intermediate(z, out, sims, 8, nil) })
}

func BenchmarkFig6BridgeAdvancedInterleaved(b *testing.B) {
	br := brownian.New(5, 1)
	const sims = 32768
	out := make([]float64, sims*br.PathLen())
	benchBridge(b, sims, func() { br.AdvancedInterleaved(1, out, sims, 8, nil) })
}

func BenchmarkFig6BridgeAdvancedC2C(b *testing.B) {
	br := brownian.New(5, 1)
	const sims = 32768
	benchBridge(b, sims, func() { br.AdvancedC2C(1, sims, 8, nil, nil) })
}

// --- Table II: Monte Carlo pricing and RNG rates ---

func BenchmarkTab2MCStreamRNG(b *testing.B) {
	g := workload.DefaultOptionGen
	g.TMax = 3
	batch := g.NewMCBatch(4)
	z := make([]float64, 1<<18)
	rng.NewStream(0, 1).NormalICDF(z)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		montecarlo.Vectorized(batch, z, bmkt, 8, 4, nil)
	}
	b.ReportMetric(4*float64(b.N)/b.Elapsed().Seconds(), "opts/s")
}

func BenchmarkTab2MCComputeRNG(b *testing.B) {
	g := workload.DefaultOptionGen
	g.TMax = 3
	batch := g.NewMCBatch(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		montecarlo.VectorizedComputeRNG(batch, 1<<18, 1, bmkt, 8, 2, nil)
	}
	b.ReportMetric(4*float64(b.N)/b.Elapsed().Seconds(), "opts/s")
}

func BenchmarkTab2NormalRNG(b *testing.B) {
	s := rng.NewStream(0, 1)
	buf := make([]float64, 1<<16)
	b.SetBytes(1 << 19)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.NormalICDF(buf)
	}
	b.ReportMetric(float64(len(buf))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mnum/s")
}

func BenchmarkTab2UniformRNG(b *testing.B) {
	s := rng.NewStream(0, 1)
	buf := make([]float64, 1<<16)
	b.SetBytes(1 << 19)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Uniform(buf)
	}
	b.ReportMetric(float64(len(buf))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mnum/s")
}

// --- Fig. 8: Crank-Nicolson American puts (256 x 1000 lattice) ---

func benchCN(b *testing.B, level cranknicolson.Level) {
	gen := workload.OptionGen{SMin: 80, SMax: 120, XMin: 90, XMax: 110, TMin: 0.8, TMax: 1.2, Seed: 5}
	a := gen.GenerateAOS(4)
	cranknicolson.Run(level, a, 256, 1000, 8, bmkt, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cranknicolson.Run(level, a, 256, 1000, 8, bmkt, nil)
	}
	b.ReportMetric(4*float64(b.N)/b.Elapsed().Seconds(), "opts/s")
}

func BenchmarkFig8CrankNicolsonBasic(b *testing.B)     { benchCN(b, cranknicolson.LevelRef) }
func BenchmarkFig8CrankNicolsonSIMD(b *testing.B)      { benchCN(b, cranknicolson.LevelIntermediate) }
func BenchmarkFig8CrankNicolsonSIMDSplit(b *testing.B) { benchCN(b, cranknicolson.LevelAdvanced) }

// --- Public batch API (the ninjagap example's ladder) ---

func BenchmarkBatchAPILevels(b *testing.B) {
	for _, level := range []finbench.OptLevel{finbench.LevelBasic, finbench.LevelIntermediate, finbench.LevelAdvanced} {
		b.Run(level.String(), func(b *testing.B) {
			const n = 100000
			batch := finbench.NewBatch(n)
			for i := 0; i < n; i++ {
				batch.Spots[i] = 50 + float64(i%150)
				batch.Strikes[i] = 50 + float64((i*7)%150)
				batch.Expiries[i] = 0.1 + float64(i%40)/8
			}
			mkt := finbench.Market{Rate: 0.02, Volatility: 0.3}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := finbench.PriceBatch(batch, mkt, level); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mopts/s")
		})
	}
}

// TestModelExperiments regenerates every modelled table/figure at reduced
// scale — the full-scale run is `go run ./cmd/finbench run -experiment all`.
func TestModelExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("model runs in -short mode")
	}
	for _, e := range bench.Experiments() {
		if e.Model == nil {
			continue // host-only experiments (servepath) have no model
		}
		res, err := e.Model(0.05)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		t.Logf("\n%s", res.Table())
	}
}
