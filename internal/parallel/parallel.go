// Package parallel provides the OpenMP-style loop parallelism the paper's
// kernels use ("#pragma omp for thread-level parallelism", Sec. III-B).
// All six benchmarks parallelize across independent work items (options,
// paths, simulations), so a parallel-for with static or dynamic chunking
// plus a tree-free reduction covers every need.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the worker count used by For: GOMAXPROCS, the Go
// analogue of OMP_NUM_THREADS.
func Workers() int { return runtime.GOMAXPROCS(0) }

// For runs fn over [0,n) split into one contiguous chunk per worker
// (OpenMP schedule(static)). fn is called with disjoint [lo,hi) ranges
// from multiple goroutines; For returns when all complete. A nil fn or
// n <= 0 is a no-op.
func For(n int, fn func(lo, hi int)) {
	ForWorkers(n, Workers(), fn)
}

// ForWorkers is For with an explicit worker count (used to model a given
// thread count, and by tests).
func ForWorkers(n, workers int, fn func(lo, hi int)) {
	if n <= 0 || fn == nil {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ForDynamic runs fn over [0,n) in grain-sized chunks handed out from a
// shared counter (OpenMP schedule(dynamic, grain)); use it when per-item
// cost is irregular, e.g. PSOR solves whose iteration counts vary by
// option.
func ForDynamic(n, grain int, fn func(lo, hi int)) {
	if n <= 0 || fn == nil {
		return
	}
	if grain <= 0 {
		grain = 1
	}
	workers := Workers()
	if workers*grain > n {
		workers = (n + grain - 1) / grain
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(atomic.AddInt64(&next, int64(grain))) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// ForIndexed runs fn once per worker with (worker, lo, hi), for kernels
// that need per-worker scratch state such as an RNG stream per thread.
// It uses static chunking; worker ids are dense in [0, workers).
func ForIndexed(n int, fn func(worker, lo, hi int)) {
	workers := Workers()
	if n <= 0 || fn == nil {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	id := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(id, lo, hi int) {
			defer wg.Done()
			fn(id, lo, hi)
		}(id, lo, hi)
		id++
	}
	wg.Wait()
}

// ReduceFloat64 computes the sum of fn over per-worker ranges: each worker
// returns a partial value for its [lo,hi) range, and the partials are
// summed in worker order, keeping the result deterministic for a fixed
// worker count.
func ReduceFloat64(n int, fn func(lo, hi int) float64) float64 {
	workers := Workers()
	if n <= 0 || fn == nil {
		return 0
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return fn(0, n)
	}
	chunk := (n + workers - 1) / workers
	nchunks := (n + chunk - 1) / chunk
	// Pad partial slots to separate cache lines to avoid false sharing.
	const pad = 8
	partials := make([]float64, nchunks*pad)
	var wg sync.WaitGroup
	i := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			partials[i*pad] = fn(lo, hi)
		}(i, lo, hi)
		i++
	}
	wg.Wait()
	var sum float64
	for k := 0; k < i; k++ {
		sum += partials[k*pad]
	}
	return sum
}
