// Backtest: the third STAC workload pillar the paper cites ("strategy
// backtesting"). A short-call position is delta-hedged over simulated
// paths at several rebalancing frequencies; Black-Scholes theory says the
// hedging-error standard deviation shrinks like 1/sqrt(rebalances), which
// the simulation reproduces.
//
//	go run ./examples/backtest
package main

import (
	"fmt"
	"log"
	"math"

	"finbench"
)

func main() {
	const (
		spot   = 100.0
		strike = 100.0
		expiry = 0.25
		nSims  = 4000
	)
	mkt := finbench.Market{Rate: 0.02, Volatility: 0.3}
	opt := finbench.Option{Type: finbench.Call, Style: finbench.European,
		Spot: spot, Strike: strike, Expiry: expiry}
	premium, err := finbench.Price(opt, mkt, finbench.ClosedForm, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Delta-hedging a short call (S=K=%g, T=%g): premium %.4f\n\n", spot, expiry, premium.Price)
	fmt.Printf("%12s %14s %14s %18s\n", "rebalances", "mean P&L", "std P&L", "std x sqrt(N)")

	for _, steps := range []int{8, 32, 128} {
		ps, err := finbench.NewPathSimulator(steps, expiry, 42)
		if err != nil {
			log.Fatal(err)
		}
		paths := ps.Simulate(nSims, spot, mkt)
		dt := expiry / float64(steps)

		var sum, sum2 float64
		for _, path := range paths {
			// Sell the call, hedge with delta shares, rebalance each step.
			cash := premium.Price
			g, _ := finbench.ComputeGreeks(opt, mkt)
			delta := g.DeltaCall
			cash -= delta * spot
			for k := 1; k < steps; k++ {
				cash *= math.Exp(mkt.Rate * dt)
				sNow := path[k]
				o := opt
				o.Spot = sNow
				o.Expiry = expiry - float64(k)*dt
				gg, err := finbench.ComputeGreeks(o, mkt)
				if err != nil {
					log.Fatal(err)
				}
				cash -= (gg.DeltaCall - delta) * sNow // rebalance
				delta = gg.DeltaCall
			}
			cash *= math.Exp(mkt.Rate * dt)
			sT := path[steps]
			payoff := math.Max(sT-strike, 0)
			pnl := cash + delta*sT - payoff
			sum += pnl
			sum2 += pnl * pnl
		}
		mean := sum / nSims
		std := math.Sqrt(sum2/nSims - mean*mean)
		fmt.Printf("%12d %14.4f %14.4f %18.4f\n", steps, mean, std, std*math.Sqrt(float64(steps)))
	}
	fmt.Println("\nstd x sqrt(N) is ~constant: discrete hedging error decays like 1/sqrt(N).")
}
