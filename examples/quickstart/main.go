// Quickstart: price one European option with all four methods of the
// benchmark, compute its greeks, and recover implied volatility.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"finbench"
)

func main() {
	opt := finbench.Option{
		Type: finbench.Call, Style: finbench.European,
		Spot: 100, Strike: 105, Expiry: 0.5,
	}
	mkt := finbench.Market{Rate: 0.02, Volatility: 0.30}

	fmt.Printf("Pricing a %s %s: S=%g K=%g T=%g (r=%g, sigma=%g)\n\n",
		opt.Style, opt.Type, opt.Spot, opt.Strike, opt.Expiry, mkt.Rate, mkt.Volatility)

	// Every numerical method converges to the same value.
	for _, method := range []finbench.Method{
		finbench.ClosedForm, finbench.BinomialTree,
		finbench.FiniteDifference, finbench.MonteCarlo,
	} {
		res, err := finbench.Price(opt, mkt, method, nil)
		if err != nil {
			log.Fatalf("%v: %v", method, err)
		}
		if res.StdErr > 0 {
			fmt.Printf("  %-16s %.4f  (+- %.4f Monte Carlo stderr)\n", method, res.Price, res.StdErr)
		} else {
			fmt.Printf("  %-16s %.4f\n", method, res.Price)
		}
	}

	g, err := finbench.ComputeGreeks(opt, mkt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGreeks: delta=%.4f gamma=%.4f vega=%.4f theta=%.4f\n",
		g.DeltaCall, g.Gamma, g.Vega, g.ThetaCall)

	// Round-trip: recover the volatility from the closed-form price.
	res, _ := finbench.Price(opt, mkt, finbench.ClosedForm, nil)
	vol, err := finbench.ImpliedVolatility(res.Price, opt, mkt.Rate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Implied volatility of %.4f: %.6f (true %.2f)\n", res.Price, vol, mkt.Volatility)
}
