package wire

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// refEncode is the reference: exactly what the server's legacy writeJSON
// produced for a 200 body.
func refEncode(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatalf("reference encode: %v", err)
	}
	return buf.Bytes()
}

func goldenPriceResponses() []*PriceResponse {
	return []*PriceResponse{
		{
			Results: []Result{{Price: 10.450583572185565}},
			Method:  "closed-form",
			Engine:  "batch-advanced",
		},
		{
			Results: []Result{
				{Price: 0}, {Price: -0.0}, {Price: 1e-7}, {Price: 9.999e-7},
				{Price: 1e-6}, {Price: 1e20}, {Price: 999999999999999999999.0},
				{Price: 1e21}, {Price: 1.5e21}, {Price: 5e-324}, {Price: math.MaxFloat64},
				{Price: -1e-9, StdErr: 2.5e-3}, {Price: 3.14, StdErr: -0.0},
			},
			Method:    "monte-carlo",
			Config:    Config{MCPaths: 1 << 20, Seed: 42},
			Engine:    "scalar",
			ElapsedUS: 12345,
		},
		{
			Results:      []Result{{Price: 1.25, StdErr: 0.5}},
			Method:       "closed-form",
			Config:       Config{BinomialSteps: 512, GridPoints: 1024, TimeSteps: 2048, MCPaths: 65536, Seed: math.MaxUint64},
			Engine:       "batch-advanced",
			Degraded:     true,
			Coalesced:    true,
			BatchOptions: 4096,
			ElapsedUS:    -1,
		},
		{
			Results: []Result{},
			Method:  "binomial-tree",
			Config:  Config{BinomialSteps: 1},
			Engine:  "scalar",
		},
	}
}

func TestAppendPriceResponseMatchesEncodingJSON(t *testing.T) {
	for i, r := range goldenPriceResponses() {
		want := refEncode(t, r)
		got, ok := AppendPriceResponse(nil, r)
		if !ok {
			t.Fatalf("case %d: append encoder refused a valid response", i)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("case %d: append encoder diverges\n got: %s\nwant: %s", i, got, want)
		}
	}
}

func TestAppendPriceResponseRandomFloats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		var price float64
		for {
			price = math.Float64frombits(rng.Uint64())
			if !math.IsNaN(price) && !math.IsInf(price, 0) {
				break
			}
		}
		r := &PriceResponse{
			Results: []Result{{Price: price, StdErr: rng.Float64()}},
			Method:  "closed-form",
			Engine:  "batch-advanced",
		}
		want := refEncode(t, r)
		got, ok := AppendPriceResponse(nil, r)
		if !ok {
			t.Fatalf("trial %d: refused price %x", trial, math.Float64bits(price))
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: price bits %x\n got: %s\nwant: %s",
				trial, math.Float64bits(price), got, want)
		}
	}
}

func TestAppendPriceResponseRejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		r := &PriceResponse{Results: []Result{{Price: bad}}, Method: "closed-form", Engine: "scalar"}
		dst := []byte("prefix")
		got, ok := AppendPriceResponse(dst, r)
		if ok {
			t.Errorf("append encoder accepted non-finite %v", bad)
		}
		if !bytes.Equal(got, []byte("prefix")) {
			t.Errorf("failed encode did not return the original dst")
		}
		// encoding/json also refuses: the fallback path errors the same way.
		if _, err := json.Marshal(r); err == nil {
			t.Errorf("reference encoder accepted non-finite %v", bad)
		}
	}
}

func TestAppendGreeksResponseMatchesEncodingJSON(t *testing.T) {
	cases := []*GreeksResponse{
		{Results: []Greeks{}, ElapsedUS: 0},
		{
			Results: []Greeks{
				{Delta: 0.6368306511756191, Gamma: 0.018762017345846895, Vega: 37.52403469169379, Theta: -6.414027546438197, Rho: 53.232481545376345},
				{Delta: 0, Gamma: -0.0, Vega: 1e-9, Theta: -1e21, Rho: 5e-324},
			},
			ElapsedUS: 987654321,
		},
	}
	for i, r := range cases {
		want := refEncode(t, r)
		got, ok := AppendGreeksResponse(nil, r)
		if !ok {
			t.Fatalf("case %d: refused valid greeks", i)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("case %d:\n got: %s\nwant: %s", i, got, want)
		}
	}
	bad := &GreeksResponse{Results: []Greeks{{Theta: math.Inf(-1)}}}
	if _, ok := AppendGreeksResponse(nil, bad); ok {
		t.Error("accepted non-finite theta")
	}
}

func TestAppendJSONStringMatchesEncodingJSON(t *testing.T) {
	cases := []string{
		"",
		"batch-advanced",
		"closed-form",
		"with \"quotes\" and \\backslash",
		"control\x00\x1f\n\r\tchars",
		"html <b>&amp;</b>",
		"unicode: héllo, 世界, \u2028line\u2029sep",
		"invalid utf8: \xff\xfe",
		"mixed \x01<\xc3\x28>\u2028",
	}
	for _, s := range cases {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("reference: %v", err)
		}
		got := appendJSONString(nil, s)
		if !bytes.Equal(got, want) {
			t.Errorf("string %q:\n got: %s\nwant: %s", s, got, want)
		}
	}
}

func TestAppendConfigOmitemptyMatrix(t *testing.T) {
	// Every subset of set/zero fields must match encoding/json's omitempty.
	for mask := 0; mask < 32; mask++ {
		var c Config
		if mask&1 != 0 {
			c.BinomialSteps = 100
		}
		if mask&2 != 0 {
			c.GridPoints = 200
		}
		if mask&4 != 0 {
			c.TimeSteps = 300
		}
		if mask&8 != 0 {
			c.MCPaths = 400
		}
		if mask&16 != 0 {
			c.Seed = 500
		}
		want, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		got := appendConfig(nil, &c)
		if !bytes.Equal(got, want) {
			t.Errorf("mask %05b:\n got: %s\nwant: %s", mask, got, want)
		}
	}
}

func TestEncodeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	r := &PriceResponse{
		Results:   make([]Result, 64),
		Method:    "closed-form",
		Engine:    "batch-advanced",
		ElapsedUS: 42,
	}
	for i := range r.Results {
		r.Results[i].Price = float64(i) * 1.25
	}
	buf := make([]byte, 0, 1<<16)
	allocs := testing.AllocsPerRun(200, func() {
		b, ok := AppendPriceResponse(buf[:0], r)
		if !ok || len(b) == 0 {
			t.Fatal("encode failed")
		}
	})
	if allocs != 0 {
		t.Errorf("AppendPriceResponse allocates %.1f/op; want 0", allocs)
	}
}
