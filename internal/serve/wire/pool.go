package wire

import (
	"math/bits"
	"sync"
)

// Freelists for the per-request wire objects. Get/Put pairs are
// bracketed by the finlint leakcheck pass (internal/lint/entrypoints.go,
// pooledGetPut): a handler that gets without putting leaks the pool's
// whole point.

// Buffer is a pooled byte buffer for request bodies and response
// encoding. B keeps its capacity across requests.
type Buffer struct {
	B []byte
}

// maxPooledBuf caps the capacity a buffer may keep in the pool; bodies of
// mega-batch requests beyond it are reallocated per request (their cost
// amortizes over the batch) instead of pinning tens of megabytes.
const maxPooledBuf = 1 << 22

var bufferPool = sync.Pool{New: func() any { return &Buffer{B: make([]byte, 0, 4096)} }}

// GetBuffer returns a pooled, empty buffer. Return it with PutBuffer.
func GetBuffer() *Buffer { return bufferPool.Get().(*Buffer) }

// PutBuffer recycles a buffer. The caller must not retain views into B.
func PutBuffer(b *Buffer) {
	if cap(b.B) > maxPooledBuf {
		return
	}
	b.B = b.B[:0]
	bufferPool.Put(b)
}

var (
	priceReqPool   = sync.Pool{New: func() any { return new(PriceRequest) }}
	greeksReqPool  = sync.Pool{New: func() any { return new(GreeksRequest) }}
	priceRespPool  = sync.Pool{New: func() any { return new(PriceResponse) }}
	greeksRespPool = sync.Pool{New: func() any { return new(GreeksResponse) }}
)

// PutRequest returns a request obtained from DecodeRequest or
// DecodeColumnarRequest to the freelist. The request, its options, and
// its columnar views must not be used after.
func PutRequest(r *PriceRequest) {
	if r == nil {
		return
	}
	r.reset()
	priceReqPool.Put(r)
}

// PutGreeksRequest returns a request obtained from DecodeGreeksRequest to
// the freelist.
func PutGreeksRequest(r *GreeksRequest) {
	if r == nil {
		return
	}
	r.Options = r.Options[:0]
	r.DeadlineMS = 0
	greeksReqPool.Put(r)
}

// GetPriceResponse returns a zeroed response whose Results slice keeps
// its pooled capacity; size it with SizedResults. Return it with
// PutPriceResponse after the encoded bytes have been written.
func GetPriceResponse() *PriceResponse {
	return priceRespPool.Get().(*PriceResponse)
}

// PutPriceResponse recycles a response. Results contents must not be
// retained.
func PutPriceResponse(r *PriceResponse) {
	if r == nil {
		return
	}
	results := r.Results[:0]
	*r = PriceResponse{Results: results}
	priceRespPool.Put(r)
}

// SizedResults resizes r.Results to n zeroed entries, reusing capacity.
func (r *PriceResponse) SizedResults(n int) {
	if cap(r.Results) >= n {
		r.Results = r.Results[:n]
	} else {
		r.Results = make([]Result, n, 1<<sizeClass(n))
	}
	clear(r.Results)
}

// GetGreeksResponse returns a zeroed greeks response with pooled Results
// capacity; size it with SizedResults.
func GetGreeksResponse() *GreeksResponse {
	return greeksRespPool.Get().(*GreeksResponse)
}

// PutGreeksResponse recycles a greeks response.
func PutGreeksResponse(r *GreeksResponse) {
	if r == nil {
		return
	}
	results := r.Results[:0]
	*r = GreeksResponse{Results: results}
	greeksRespPool.Put(r)
}

// SizedResults resizes r.Results to n zeroed entries, reusing capacity.
func (r *GreeksResponse) SizedResults(n int) {
	if cap(r.Results) >= n {
		r.Results = r.Results[:n]
	} else {
		r.Results = make([]Greeks, n, 1<<sizeClass(n))
	}
	clear(r.Results)
}

// sizeClass is the smallest c with 1<<c >= n (power-of-two capacities
// keep pooled slices reusable across nearby batch sizes).
func sizeClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}
