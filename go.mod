module finbench

go 1.22
