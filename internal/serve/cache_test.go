package serve

import (
	"bytes"
	"net/http"
	"sync"
	"testing"
	"time"

	"finbench"
	"finbench/internal/serve/pricecache"
)

func cacheConfig() Config {
	return Config{
		CacheBytes:       1 << 20,
		CoalesceMaxBatch: 1, // bypass the coalescer: deterministic timing
		ProfileEvery:     -1,
	}
}

func priceBody(n int) *PriceRequest {
	req := &PriceRequest{Options: make([]WireOption, n)}
	for i := range req.Options {
		req.Options[i] = WireOption{Spot: 100 + float64(i), Strike: 100, Expiry: 1}
	}
	return req
}

// TestCacheHitByteIdentity is the bit-identity regression test: the
// cache-hit 200 must be byte-for-byte identical to the cold 200 for the
// same request, and both must verify against the library from the echoed
// effective config.
func TestCacheHitByteIdentity(t *testing.T) {
	s, ts := newTestServer(t, cacheConfig())
	req := priceBody(4)
	req.Options[1].Type = "put"

	respCold, coldBody := postJSON(t, ts.URL+"/price", req)
	if respCold.StatusCode != http.StatusOK {
		t.Fatalf("cold status %d: %s", respCold.StatusCode, coldBody)
	}
	if got := respCold.Header.Get(pricecache.Header); got != "miss" {
		t.Fatalf("cold %s header = %q, want miss", pricecache.Header, got)
	}

	respHit, hitBody := postJSON(t, ts.URL+"/price", req)
	if respHit.StatusCode != http.StatusOK {
		t.Fatalf("hit status %d: %s", respHit.StatusCode, hitBody)
	}
	if got := respHit.Header.Get(pricecache.Header); got != "hit" {
		t.Fatalf("hit %s header = %q, want hit", pricecache.Header, got)
	}
	if !bytes.Equal(coldBody, hitBody) {
		t.Fatalf("cache hit differs from cold response:\ncold: %s\nhit:  %s", coldBody, hitBody)
	}
	verifyAgainstLibrary(t, s.cfg.Market, req, decodePrice(t, hitBody))

	st := s.cache.Snapshot()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("cache stats = %+v", st)
	}
}

// TestCacheMonteCarloBypasses pins the cacheability decision: Monte Carlo
// results depend on the batch decomposition, so MC requests must never
// enter the cache — not as a miss, not as a hit.
func TestCacheMonteCarloBypasses(t *testing.T) {
	s, ts := newTestServer(t, cacheConfig())
	req := priceBody(1)
	req.Method = "monte-carlo"
	req.Config.MCPaths = 1024

	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/price", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		if got := resp.Header.Get(pricecache.Header); got != "bypass" {
			t.Fatalf("request %d: %s header = %q, want bypass", i, pricecache.Header, got)
		}
	}
	st := s.cache.Snapshot()
	if st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("monte-carlo touched the cache: %+v", st)
	}
}

// Lattice methods are deterministic but conservatively uncached (the
// standing invariant sanctions caching for LevelAdvanced closed-form
// today); pin that they bypass too.
func TestCacheLatticeBypasses(t *testing.T) {
	s, ts := newTestServer(t, cacheConfig())
	req := priceBody(1)
	req.Method = "binomial-tree"
	resp, body := postJSON(t, ts.URL+"/price", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(pricecache.Header); got != "bypass" {
		t.Fatalf("%s header = %q, want bypass", pricecache.Header, got)
	}
	if st := s.cache.Snapshot(); st.Entries != 0 {
		t.Fatalf("lattice entered the cache: %+v", st)
	}
}

// TestCacheDisabledNoHeader: default config leaves the cache off and the
// wire format untouched (no X-Finserve-Cache header, elapsed_us live).
func TestCacheDisabledNoHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{CoalesceMaxBatch: 1, ProfileEvery: -1})
	resp, body := postJSON(t, ts.URL+"/price", priceBody(1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(pricecache.Header); got != "" {
		t.Fatalf("cache disabled but %s header = %q", pricecache.Header, got)
	}
}

// TestCacheConfigChangeRekeys: the same contract batch under a different
// effective config must miss (the config is part of the content address),
// and both variants stay byte-stable.
func TestCacheConfigChangeRekeys(t *testing.T) {
	s, ts := newTestServer(t, cacheConfig())
	req := priceBody(2)
	_, body1 := postJSON(t, ts.URL+"/price", req)

	req2 := priceBody(2)
	req2.Config.Seed = 7 // echoed in the response, so a different body
	resp2, body2 := postJSON(t, ts.URL+"/price", req2)
	if got := resp2.Header.Get(pricecache.Header); got != "miss" {
		t.Fatalf("config-changed request header = %q, want miss", got)
	}
	if bytes.Equal(body1, body2) {
		t.Fatal("different effective configs produced the same body")
	}
	if st := s.cache.Snapshot(); st.Misses != 2 || st.Entries != 2 {
		t.Fatalf("cache stats = %+v", st)
	}
}

// TestCacheCollapse: identical concurrent requests while a slow leader
// computes must collapse onto one computation — with a widened coalescing
// window the leader's compute dwells long enough for the burst to pile
// onto the flight.
func TestCacheCollapse(t *testing.T) {
	cfg := cacheConfig()
	cfg.CoalesceMaxBatch = 0 // default: use the coalescer...
	cfg.CoalesceWindow = 50 * time.Millisecond
	s, ts := newTestServer(t, cfg)

	req := priceBody(3)
	const n = 8
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/price", req)
			if resp.StatusCode == http.StatusOK {
				bodies[i] = body
			}
		}(i)
	}
	wg.Wait()

	st := s.cache.Snapshot()
	if st.Collapsed == 0 {
		t.Fatalf("no collapse under concurrent identical burst: %+v", st)
	}
	if st.Misses != 1 {
		t.Fatalf("burst ran %d computations, want 1: %+v", st.Misses, st)
	}
	var ref []byte
	for i, b := range bodies {
		if b == nil {
			t.Fatalf("request %d failed", i)
		}
		if ref == nil {
			ref = b
		} else if !bytes.Equal(ref, b) {
			t.Fatalf("burst responses differ:\n%s\n%s", ref, b)
		}
	}
}

// TestCacheStatszSnapshot: counters surface under the "cache" key and the
// snapshot marshals deterministically (struct field order).
func TestCacheStatszSnapshot(t *testing.T) {
	s, ts := newTestServer(t, cacheConfig())
	req := priceBody(1)
	postJSON(t, ts.URL+"/price", req)
	postJSON(t, ts.URL+"/price", req)

	snap := s.statszSnapshot()
	if snap.Cache == nil {
		t.Fatal("statsz missing cache block with caching enabled")
	}
	if snap.Cache.Hits != 1 || snap.Cache.Misses != 1 || snap.Cache.Entries != 1 {
		t.Fatalf("statsz cache block = %+v", snap.Cache)
	}
	if snap.Cache.MaxBytes != 1<<20 {
		t.Fatalf("max_bytes = %d", snap.Cache.MaxBytes)
	}

	off, tsOff := newTestServer(t, Config{CoalesceMaxBatch: 1, ProfileEvery: -1})
	_ = tsOff
	if snap := off.statszSnapshot(); snap.Cache != nil {
		t.Fatal("statsz reports cache block with caching disabled")
	}
}

// TestCacheKeyMatchesDigestCanonicalization: the server-side key builder
// inherits the canonicalizer's equivalences ("" == "call"/"european").
func TestCacheKeyMatchesDigestCanonicalization(t *testing.T) {
	s := New(cacheConfig())
	defer s.Close()
	var base finbench.Config
	cfg := base.Resolved()
	a := &PriceRequest{Options: []WireOption{{Type: "call", Style: "european", Spot: 100, Strike: 95, Expiry: 1}}}
	b := &PriceRequest{Options: []WireOption{{Spot: 100, Strike: 95, Expiry: 1}}}
	if s.cacheKey(a, cfg) != s.cacheKey(b, cfg) {
		t.Fatal("canonically equal requests keyed differently")
	}
	c := &PriceRequest{Options: []WireOption{{Type: "put", Spot: 100, Strike: 95, Expiry: 1}}}
	if s.cacheKey(a, cfg) == s.cacheKey(c, cfg) {
		t.Fatal("put keyed same as call")
	}
}
