package pricecache

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
)

// The content address. A cacheable response is a pure function of
// (effective method, market, resolved numeric config, canonicalized
// contract batch); Digest folds exactly those inputs — nothing
// transport-level (deadline, client identity, arrival order) — into a
// collision-resistant key, so two requests collide iff the protocol
// guarantees them byte-identical answers.
//
// Canonicalization: the wire encodes option type and exercise style as
// optional strings where "" means "call" / "european"; Digest maps both
// spellings to the same bit, so semantically equal batches digest
// equally. Everything else is hashed from its exact bit pattern
// (math.Float64bits for the contract terms, fixed-width integers for the
// config), so any numerically distinct batch digests differently. Batch
// order is significant by design: the results array aligns with the
// request's option order, so a permuted batch is a different response.

// Key is a content-addressed cache key (SHA-256 of the canonical
// encoding).
type Key [sha256.Size]byte

// Contract is one option contract in wire vocabulary: Type is "" or
// "call" (equivalent) or "put"; Style is "" or "european" (equivalent)
// or "american".
type Contract struct {
	Type, Style          string
	Spot, Strike, Expiry float64
}

// Params are the numeric knobs that select the effective pricing
// configuration. Callers that know the resolved effective config (the
// replica tier) pass it so a config change re-keys — invalidation by
// construction; callers that only see the request (the router tier) pass
// the values as sent.
type Params struct {
	BinomialSteps int
	GridPoints    int
	TimeSteps     int
	MCPaths       int
	Seed          uint64
}

// digestVersion is bumped whenever the canonical encoding changes, so a
// new binary never reads entries keyed by an old scheme (the cache is
// in-memory only today; the version byte keeps that true by construction
// if entries ever become shareable).
const digestVersion = 1

// Digest computes the content address of a pricing request. rate and vol
// are the market the batch prices against (zero for tiers that key
// purely on request content, e.g. a router fronting a homogeneous
// fleet). The encoding is prefix-free — every variable-length field is
// length-prefixed and every scalar fixed-width — so distinct inputs
// never produce the same byte stream.
func Digest(method string, rate, vol float64, p Params, contracts []Contract) Key {
	h := sha256.New()
	var buf [8]byte
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		_, _ = h.Write(buf[:]) // hash.Hash.Write never returns an error
	}
	put64(digestVersion)
	put64(uint64(len(method)))
	_, _ = h.Write([]byte(method)) // hash.Hash.Write never returns an error
	put64(math.Float64bits(rate))
	put64(math.Float64bits(vol))
	put64(uint64(int64(p.BinomialSteps)))
	put64(uint64(int64(p.GridPoints)))
	put64(uint64(int64(p.TimeSteps)))
	put64(uint64(int64(p.MCPaths)))
	put64(p.Seed)
	put64(uint64(len(contracts)))
	for i := range contracts {
		c := &contracts[i]
		var flags uint64
		if c.Type == "put" {
			flags |= 1
		}
		if c.Style == "american" {
			flags |= 2
		}
		put64(flags)
		put64(math.Float64bits(c.Spot))
		put64(math.Float64bits(c.Strike))
		put64(math.Float64bits(c.Expiry))
	}
	var key Key
	h.Sum(key[:0])
	return key
}
