package rng

import (
	"math"

	"finbench/internal/perf"
)

// Marsaglia-Tsang ziggurat for the standard normal distribution, 128
// layers. Tables are computed at package init from the layer recurrence
// rather than embedded, so the construction itself is testable.
//
// The ziggurat is the fastest scalar normal generator but relies on
// rejection branches, which is why the paper's SIMD pipelines use the
// branch-free ICDF transform instead; it is included here as the scalar
// baseline for the RNG ablation benchmarks.

const zigLayers = 128

// zigX[0] is the pseudo-width q = v/f(r) of the base strip; zigX[1] = r;
// zigX[i] decreases to zigX[zigLayers] = 0. zigY[i] = f(zigX[i]) with
// f(x) = exp(-x^2/2). zigR[i] = zigX[i+1]/zigX[i] is the fast-accept
// ratio of layer i (zigR[0] = r/q for the tail layer).
var (
	zigX [zigLayers + 1]float64
	zigY [zigLayers + 1]float64
	zigR [zigLayers]float64
)

// normalPDFUnscaled is exp(-x^2/2) (normalization folds into the tables).
func normalPDFUnscaled(x float64) float64 { return math.Exp(-0.5 * x * x) }

func init() {
	// Classic constants for the 128-layer normal ziggurat: rightmost layer
	// boundary r and per-strip area v.
	const (
		r = 3.442619855899
		v = 9.91256303526217e-3
	)
	zigX[0] = v / normalPDFUnscaled(r) // base strip pseudo-width q > r
	zigX[1] = r
	for i := 2; i < zigLayers; i++ {
		prev := zigX[i-1]
		zigX[i] = math.Sqrt(-2 * math.Log(v/prev+normalPDFUnscaled(prev)))
	}
	zigX[zigLayers] = 0
	for i := 0; i <= zigLayers; i++ {
		zigY[i] = normalPDFUnscaled(zigX[i])
	}
	for i := 0; i < zigLayers; i++ {
		zigR[i] = zigX[i+1] / zigX[i]
	}
}

// NormalZiggurat fills dst with standard normals using the ziggurat method.
func (s *Stream) NormalZiggurat(dst []float64) {
	for i := range dst {
		dst[i] = s.zigguratOne()
	}
}

func (s *Stream) zigguratOne() float64 {
	for {
		s.countRNG(2)
		layer := int(s.mt.Uint32() & (zigLayers - 1))
		// Signed uniform in (-1, 1).
		f := 2*s.mt.Float64OO() - 1
		x := f * zigX[layer]
		if math.Abs(f) < zigR[layer] {
			return x // fast path: strictly inside layer `layer`
		}
		if layer == 0 {
			// Tail beyond r: Marsaglia's exact tail algorithm.
			r := zigX[1]
			for {
				s.countRNG(2)
				s.count(perf.OpLog, 2)
				xx := -math.Log(s.mt.Float64OO()) / r
				yy := -math.Log(s.mt.Float64OO())
				if 2*yy > xx*xx {
					if f < 0 {
						return -(r + xx)
					}
					return r + xx
				}
			}
		}
		// Wedge: accept against the true density.
		s.countRNG(1)
		s.count(perf.OpExp, 1)
		y := s.mt.Float64OO()
		ax := math.Abs(x)
		if zigY[layer]+y*(zigY[layer+1]-zigY[layer]) < normalPDFUnscaled(ax) {
			return x
		}
	}
}
