package stream

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"finbench"
	"finbench/internal/serve/stream/ticker"
)

// manualHub builds an unstarted hub the test drives with Step.
func manualHub(t *testing.T, cfg Config) *Hub {
	t.Helper()
	return New(cfg, nil)
}

// tickFrom advances the hub's own source one tick.
func tickFrom(h *Hub, st *ticker.State) {
	h.Source().Next(st)
	st.TimeNS = int64(st.Seq) // deterministic stand-in for the wall clock
}

// readFrame decodes one SSE frame's event payload.
func readFrame(t *testing.T, frame []byte) (string, Event) {
	t.Helper()
	fr := NewFrameReader(bytes.NewReader(frame))
	f, err := fr.Next()
	if err != nil {
		t.Fatalf("parsing frame %q: %v", frame, err)
	}
	var ev Event
	if err := json.Unmarshal(f.Data, &ev); err != nil {
		t.Fatalf("decoding %s payload: %v", f.Event, err)
	}
	return f.Event, ev
}

func TestAllDirtyFirstTick(t *testing.T) {
	h := manualHub(t, Config{Universe: 128, Underlyings: 8})
	var st ticker.State
	tickFrom(h, &st)
	h.Step(&st)
	if got := len(h.repriced); got != 128 {
		t.Fatalf("first tick repriced %d contracts, want the whole universe of 128", got)
	}
	for i := range h.cur {
		if !h.cur[i].priced {
			t.Fatalf("contract %d unpriced after the all-dirty first tick", i)
		}
	}
}

// TestDirtyThresholdBoundaries: a move exactly at the threshold dirties
// the contract; a move just under does not. Driven with hand-built
// states so the boundary values are exact.
func TestDirtyThresholdBoundaries(t *testing.T) {
	cfg := Config{Universe: 4, Underlyings: 1,
		SpotThreshold: 0.01, VolThreshold: 0.005, RateThreshold: 0.0005}
	base := ticker.State{Seq: 1, Spots: []float64{100}, Vol: 0.3, Rate: 0.02}

	cases := []struct {
		name  string
		next  ticker.State
		dirty bool
	}{
		{"unchanged", ticker.State{Spots: []float64{100}, Vol: 0.3, Rate: 0.02}, false},
		{"spot at threshold", ticker.State{Spots: []float64{101}, Vol: 0.3, Rate: 0.02}, true},
		{"spot below threshold", ticker.State{Spots: []float64{100.9}, Vol: 0.3, Rate: 0.02}, false},
		{"spot down at threshold", ticker.State{Spots: []float64{99}, Vol: 0.3, Rate: 0.02}, true},
		{"vol at threshold", ticker.State{Spots: []float64{100}, Vol: 0.305, Rate: 0.02}, true},
		{"vol below threshold", ticker.State{Spots: []float64{100}, Vol: 0.3049, Rate: 0.02}, false},
		{"rate at threshold", ticker.State{Spots: []float64{100}, Vol: 0.3, Rate: 0.0205}, true},
		{"rate below threshold", ticker.State{Spots: []float64{100}, Vol: 0.3, Rate: 0.02044}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := manualHub(t, cfg)
			h.Step(&base) // first pass prices everything, setting the baseline
			if len(h.repriced) != 4 {
				t.Fatalf("baseline pass repriced %d, want 4", len(h.repriced))
			}
			next := tc.next
			next.Seq = 2
			h.Step(&next)
			if dirty := len(h.repriced) > 0; dirty != tc.dirty {
				t.Errorf("repriced %d contracts, want dirty=%v", len(h.repriced), tc.dirty)
			}
		})
	}
}

// TestMovesAccumulateAcrossTicks: two sub-threshold moves in the same
// direction cross the threshold together — the baseline is the last
// repricing, not the last tick, so coalescing never loses a move.
func TestMovesAccumulateAcrossTicks(t *testing.T) {
	h := manualHub(t, Config{Universe: 2, Underlyings: 1, SpotThreshold: 0.01})
	h.Step(&ticker.State{Seq: 1, Spots: []float64{100}, Vol: 0.3, Rate: 0.02})
	h.Step(&ticker.State{Seq: 2, Spots: []float64{100.6}, Vol: 0.3, Rate: 0.02})
	if len(h.repriced) != 0 {
		t.Fatalf("0.6%% move repriced %d contracts, want 0", len(h.repriced))
	}
	h.Step(&ticker.State{Seq: 3, Spots: []float64{101.2}, Vol: 0.3, Rate: 0.02})
	if len(h.repriced) != 2 {
		t.Fatalf("accumulated 1.2%% move repriced %d contracts, want 2", len(h.repriced))
	}
}

func TestNonPositiveThresholdAlwaysDirty(t *testing.T) {
	h := manualHub(t, Config{Universe: 8, Underlyings: 2, SpotThreshold: -1})
	var st ticker.State
	for i := 0; i < 3; i++ {
		tickFrom(h, &st)
		h.Step(&st)
		if len(h.repriced) != 8 {
			t.Fatalf("pass %d repriced %d, want the whole universe (threshold <= 0)", i, len(h.repriced))
		}
	}
}

func TestMailboxSkipToLatest(t *testing.T) {
	var m mailbox
	m.notify = make(chan struct{}, 1)
	a := ticker.State{Seq: 1, Spots: []float64{100}}
	b := ticker.State{Seq: 2, Spots: []float64{101}}
	if m.put(&a) {
		t.Error("first put reported a drop")
	}
	if !m.put(&b) {
		t.Error("overwriting put did not report a drop")
	}
	var got ticker.State
	if !m.take(&got) {
		t.Fatal("take from a full mailbox failed")
	}
	if got.Seq != 2 {
		t.Errorf("take returned seq %d, want the latest (2)", got.Seq)
	}
	if m.take(&got) {
		t.Error("take from an emptied mailbox succeeded")
	}
}

func TestSubscribeValidation(t *testing.T) {
	h := manualHub(t, Config{Universe: 16, Underlyings: 4, MaxSubscribers: 2})
	if _, err := h.Subscribe([]int{16}); err != ErrBadContract {
		t.Errorf("out-of-universe id: err = %v, want ErrBadContract", err)
	}
	if _, err := h.Subscribe([]int{-1}); err != ErrBadContract {
		t.Errorf("negative id: err = %v, want ErrBadContract", err)
	}
	s1, err := h.Subscribe(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Subscribed() != 16 {
		t.Errorf("nil subscription covers %d contracts, want the whole universe", s1.Subscribed())
	}
	if _, err := h.Subscribe([]int{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Subscribe([]int{1}); err != ErrTooManySubs {
		t.Errorf("over the subscriber limit: err = %v, want ErrTooManySubs", err)
	}
	h.Shutdown()
	h.Unsubscribe(s1)
	if _, err := h.Subscribe([]int{0}); err != ErrDraining {
		t.Errorf("subscribe while draining: err = %v, want ErrDraining", err)
	}
	select {
	case <-s1.Gone():
	default:
		t.Error("Gone not closed by Shutdown")
	}
}

// TestResyncAfterOverflowBitMatch is the backpressure contract end to
// end, at the hub layer: overflow a one-slot subscriber buffer, require
// the dropped delta to be replaced by a resync snapshot, and require
// every float of that snapshot to be bit-identical to a cold
// LevelAdvanced repricing plus scalar greeks at the entry's echoed
// inputs — a slow reader loses granularity, never correctness.
func TestResyncAfterOverflowBitMatch(t *testing.T) {
	h := manualHub(t, Config{Universe: 64, Underlyings: 8,
		SpotThreshold: -1, SubscriberBuffer: 1})
	sub, err := h.Subscribe(nil)
	if err != nil {
		t.Fatal(err)
	}

	var st ticker.State
	tickFrom(h, &st)
	h.Step(&st) // initial snapshot fills the one-slot buffer
	tickFrom(h, &st)
	h.Step(&st) // greeks delta cannot fit: dropped, resync flagged
	if got := h.eventsDropped.Load(); got == 0 {
		t.Fatal("no drop recorded despite a full subscriber buffer")
	}

	event, ev := readFrame(t, <-sub.C()) // drain the initial snapshot
	if event != EventSnapshot || ev.Resync {
		t.Fatalf("first event = %s resync=%v, want the initial snapshot", event, ev.Resync)
	}

	tickFrom(h, &st)
	h.Step(&st) // buffer has room again: the resync snapshot goes out
	event, ev = readFrame(t, <-sub.C())
	if event != EventSnapshot {
		t.Fatalf("post-overflow event = %s, want snapshot", event)
	}
	if !ev.Resync {
		t.Error("post-overflow snapshot not flagged resync")
	}
	if h.resyncs.Load() != 1 {
		t.Errorf("resyncs = %d, want 1", h.resyncs.Load())
	}
	if len(ev.Contracts) != 64 {
		t.Fatalf("resync snapshot carries %d contracts, want the full subscription of 64", len(ev.Contracts))
	}
	verifyEntriesCold(t, ev.Contracts)
}

// verifyEntriesCold recomputes every entry from its echoed inputs and
// requires bit-equality on all six outputs.
func verifyEntriesCold(t *testing.T, entries []Entry) {
	t.Helper()
	b := finbench.NewBatch(1)
	for _, e := range entries {
		b.Spots[0], b.Strikes[0], b.Expiries[0] = e.Spot, e.Strike, e.Expiry
		mkt := finbench.Market{Rate: e.Rate, Volatility: e.Vol}
		if err := finbench.PriceBatchCtx(context.Background(), b, mkt, finbench.LevelAdvanced); err != nil {
			t.Fatalf("contract %d: cold repricing: %v", e.ID, err)
		}
		opt := finbench.Option{Type: finbench.Call, Style: finbench.European,
			Spot: e.Spot, Strike: e.Strike, Expiry: e.Expiry}
		price, delta, theta, rho := b.Calls[0], 0.0, 0.0, 0.0
		g, err := finbench.ComputeGreeks(opt, mkt)
		if err != nil {
			t.Fatalf("contract %d: cold greeks: %v", e.ID, err)
		}
		if e.Type == "put" {
			price, delta, theta, rho = b.Puts[0], g.DeltaPut, g.ThetaPut, g.RhoPut
		} else {
			delta, theta, rho = g.DeltaCall, g.ThetaCall, g.RhoCall
		}
		for _, pair := range [][2]float64{
			{e.Price, price}, {e.Delta, delta}, {e.Gamma, g.Gamma},
			{e.Vega, g.Vega}, {e.Theta, theta}, {e.Rho, rho},
		} {
			if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
				t.Fatalf("contract %d: pushed %x != cold %x", e.ID,
					math.Float64bits(pair[0]), math.Float64bits(pair[1]))
			}
		}
	}
}

// TestDegradedCapAdaptation: a blown budget shrinks the worst-movers
// cap; capped passes that finish fast re-grow it back to uncapped — the
// hysteresis that keeps a transient stall from permanently degrading
// the feed.
func TestDegradedCapAdaptation(t *testing.T) {
	var stall atomic.Bool
	reprice := func(ctx context.Context, b *finbench.Batch, m finbench.Market) error {
		if stall.Load() {
			time.Sleep(300 * time.Millisecond)
		}
		return finbench.PriceBatchCtx(ctx, b, m, finbench.LevelAdvanced)
	}
	// The budget is generous against real repricing speed (so only the
	// injected stall ever blows it) but far under the stall.
	h := New(Config{Universe: 4096, Underlyings: 16,
		SpotThreshold: -1, Budget: 200 * time.Millisecond}, reprice)

	var st ticker.State
	stall.Store(true)
	tickFrom(h, &st)
	h.Step(&st)
	if h.degradedPasses.Load() != 1 {
		t.Fatalf("stalled pass not degraded (degradedPasses=%d)", h.degradedPasses.Load())
	}
	capAfterBlow := h.repriceCap.Load()
	if capAfterBlow <= 0 || capAfterBlow >= 4096 {
		t.Fatalf("cap after blown budget = %d, want a real shrink", capAfterBlow)
	}

	stall.Store(false)
	for i := 0; i < 10 && h.repriceCap.Load() != 0; i++ {
		prev := h.repriceCap.Load()
		tickFrom(h, &st)
		h.Step(&st)
		if next := h.repriceCap.Load(); next != 0 && next <= prev {
			t.Fatalf("fast capped pass did not grow the cap (%d -> %d)", prev, next)
		}
	}
	if h.repriceCap.Load() != 0 {
		t.Fatalf("cap never recovered to uncapped (still %d)", h.repriceCap.Load())
	}
	// The skipped contracts stayed dirty the whole time; the first
	// uncapped pass catches every one of them up.
	tickFrom(h, &st)
	h.Step(&st)
	for i := range h.cur {
		if !h.cur[i].priced {
			t.Fatalf("contract %d still unpriced after an uncapped pass", i)
		}
	}
}

// TestDegradedEventFlag: events emitted by a capped pass carry
// degraded=true; clean passes do not.
func TestDegradedEventFlag(t *testing.T) {
	h := manualHub(t, Config{Universe: 256, Underlyings: 4,
		SpotThreshold: -1, SubscriberBuffer: 64, MinReprice: 64})
	sub, err := h.Subscribe(nil)
	if err != nil {
		t.Fatal(err)
	}
	var st ticker.State
	tickFrom(h, &st)
	h.Step(&st)
	if event, ev := readFrame(t, <-sub.C()); event != EventSnapshot || ev.Degraded {
		t.Fatalf("first event = %s degraded=%v, want a clean snapshot", event, ev.Degraded)
	}

	h.repriceCap.Store(64) // force a capped (degraded) pass
	tickFrom(h, &st)
	h.Step(&st)
	event, ev := readFrame(t, <-sub.C())
	if event != EventGreeks {
		t.Fatalf("second event = %s, want greeks", event)
	}
	if !ev.Degraded {
		t.Error("capped pass's event not flagged degraded")
	}
	if len(ev.Contracts) != 64 {
		t.Errorf("capped pass pushed %d contracts, want the cap of 64", len(ev.Contracts))
	}
}

// TestFanOutRace exercises the started hub's full concurrency surface —
// ticker, repricing loop, subscribe/unsubscribe churn, draining readers
// — under the race detector.
func TestFanOutRace(t *testing.T) {
	h := New(Config{Universe: 256, Underlyings: 16, SpotThreshold: -1,
		Interval: time.Millisecond, SubscriberBuffer: 2}, nil)
	h.Start()
	defer h.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(lo int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sub, err := h.Subscribe([]int{lo, lo + 1, lo + 2})
				if err != nil {
					return // draining
				}
				deadline := time.After(5 * time.Millisecond)
			drain:
				for {
					select {
					case <-sub.C():
					case <-sub.Gone():
						break drain
					case <-deadline:
						break drain
					}
				}
				h.Unsubscribe(sub)
			}
		}(i * 16)
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	snap := h.Snapshot()
	if snap.Passes == 0 || snap.EventsSent == 0 {
		t.Errorf("stress run did no work: %+v", snap)
	}
}

// TestOverloadBoundedStaleness: a hub ticked 10x faster than its
// repricing can drain must drop ticks (skip-to-latest) rather than
// queue them, and still price against the latest state.
func TestOverloadBoundedStaleness(t *testing.T) {
	reprice := func(ctx context.Context, b *finbench.Batch, m finbench.Market) error {
		time.Sleep(2 * time.Millisecond) // 10x the tick interval
		return finbench.PriceBatchCtx(ctx, b, m, finbench.LevelAdvanced)
	}
	h := New(Config{Universe: 64, Underlyings: 8, SpotThreshold: -1,
		Interval: 200 * time.Microsecond, Budget: time.Second}, reprice)
	h.Start()
	time.Sleep(150 * time.Millisecond)
	h.Close()
	snap := h.Snapshot()
	if snap.DroppedTicks == 0 {
		t.Errorf("overloaded hub dropped no ticks: %+v", snap)
	}
	if snap.Passes >= snap.Ticks {
		t.Errorf("passes (%d) not coalesced below ticks (%d)", snap.Passes, snap.Ticks)
	}
}

func TestShutdownIdempotentAndStopsTicking(t *testing.T) {
	h := New(Config{Universe: 16, Underlyings: 4, Interval: time.Millisecond}, nil)
	h.Start()
	time.Sleep(10 * time.Millisecond)
	h.Close()
	h.Shutdown() // second shutdown must be a no-op
	ticks := h.ticks.Load()
	time.Sleep(20 * time.Millisecond)
	if got := h.ticks.Load(); got != ticks {
		t.Errorf("hub ticked after Close (%d -> %d)", ticks, got)
	}
}
