// Command benchreg is the continuous-benchmarking front end: it snapshots
// the experiment registry's host throughput, diffs snapshots, and gates
// on noise-aware regressions.
//
// Usage:
//
//	benchreg run   [-short] [-o BENCH_1.json] [-scale f] [-reps k]
//	               [-warmup n] [-experiment all|fig4|...]
//	benchreg diff  [-md] old.json new.json
//	benchreg check -baseline BENCH_0.json [-candidate new.json] [-short]
//	               [-max-slowdown 0.10] [-mad-factor 3] [-strict-env]
//	               [-o saved.json] [-md summary.md]
//
// run executes every registered experiment's Measure mode with warmup
// plus k repetitions and writes a schema-versioned snapshot recording the
// median and MAD of wall time and throughput, each experiment's op mix,
// and an environment fingerprint. diff compares two snapshots kernel by
// kernel. check compares a candidate (a file, or a fresh run when
// -candidate is omitted) against a baseline and exits 1 when any kernel's
// median throughput drops by more than -max-slowdown AND beyond
// -mad-factor x MAD; regressions across mismatched environment
// fingerprints are advisory unless -strict-env is set.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"finbench/internal/bench"
	"finbench/internal/benchreg"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = runCmd(os.Args[2:])
	case "diff":
		err = diffCmd(os.Args[2:])
	case "check":
		err = checkCmd(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "benchreg: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreg: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  benchreg run   [-short] [-o BENCH_1.json] [-scale f] [-reps k] [-warmup n] [-experiment id|all]
  benchreg diff  [-md] old.json new.json
  benchreg check -baseline BENCH_0.json [-candidate new.json] [-short] [-max-slowdown f]
                 [-mad-factor f] [-strict-env] [-o saved.json] [-md summary.md]`)
}

// samplingFlags registers the shared run/check sampling flags on fs and
// returns a resolver that applies precedence: explicit flags override the
// -short/full preset.
func samplingFlags(fs *flag.FlagSet) func() (benchreg.Opts, float64, string) {
	short := fs.Bool("short", false, "short mode: fewer, briefer repetitions and a smaller workload scale")
	scale := fs.Float64("scale", 0, "workload scale in (0,1]; 0 picks the mode default")
	reps := fs.Int("reps", 0, "timed repetitions per kernel; 0 picks the mode default")
	warmup := fs.Int("warmup", -1, "untimed warmup calls per kernel; -1 picks the mode default")
	return func() (benchreg.Opts, float64, string) {
		opts, sc, mode := benchreg.DefaultOpts(), 0.25, "full"
		if *short {
			opts, sc, mode = benchreg.ShortOpts(), 0.02, "short"
		}
		if *scale > 0 {
			sc = *scale
		}
		if *reps > 0 {
			opts.Reps = *reps
		}
		if *warmup >= 0 {
			opts.Warmup = *warmup
		}
		return opts, sc, mode
	}
}

// snapshot collects a fresh snapshot and stamps the wall clock (the
// library never reads the clock for anything but intervals, keeping
// seeddet's determinism contract; the stamp lives here in cmd/).
func snapshot(opts benchreg.Opts, scale float64, mode, only string) (*benchreg.Snapshot, error) {
	snap, err := bench.Collect(scale, opts, only)
	if err != nil {
		return nil, err
	}
	snap.CreatedAt = time.Now().UTC().Format(time.RFC3339)
	snap.Mode = mode
	return snap, nil
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	resolve := samplingFlags(fs)
	out := fs.String("o", "BENCH_1.json", "output snapshot path")
	only := fs.String("experiment", "all", "experiment id to run, or all")
	_ = fs.Parse(args) // ExitOnError: Parse exits the process on bad flags

	opts, scale, mode := resolve()
	fmt.Fprintf(os.Stderr, "benchreg: run mode=%s scale=%g reps=%d warmup=%d\n", mode, scale, opts.Reps, opts.Warmup)
	snap, err := snapshot(opts, scale, mode, *only)
	if err != nil {
		return err
	}
	if err := snap.WriteFile(*out); err != nil {
		return err
	}
	fmt.Printf("benchreg: wrote %s (%d kernels, %d op mixes, env %s)\n",
		*out, len(snap.Kernels), len(snap.Mixes), snap.Env)
	return nil
}

func diffCmd(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	md := fs.Bool("md", false, "emit GitHub-flavored markdown instead of an aligned table")
	_ = fs.Parse(args) // ExitOnError: Parse exits the process on bad flags
	if fs.NArg() != 2 {
		return fmt.Errorf("diff wants exactly two snapshot paths, got %d", fs.NArg())
	}
	old, err := benchreg.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	cur, err := benchreg.ReadFile(fs.Arg(1))
	if err != nil {
		return err
	}
	report := benchreg.Check(old, cur, benchreg.DefaultGate())
	if *md {
		fmt.Print(report.Markdown())
	} else {
		fmt.Print(report.Table())
	}
	return nil
}

func checkCmd(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	resolve := samplingFlags(fs)
	baselinePath := fs.String("baseline", "", "baseline snapshot to gate against (required)")
	candidatePath := fs.String("candidate", "", "candidate snapshot; empty runs a fresh one")
	maxSlowdown := fs.Float64("max-slowdown", benchreg.DefaultGate().MaxSlowdown, "tolerated fractional throughput drop")
	madFactor := fs.Float64("mad-factor", benchreg.DefaultGate().MADFactor, "noise band width in MADs")
	maxAllocIncrease := fs.Float64("max-alloc-increase", benchreg.DefaultGate().MaxAllocIncrease, "tolerated fractional allocs/op growth on gated records")
	allocSlack := fs.Float64("alloc-slack", benchreg.DefaultGate().AllocSlack, "absolute allocs/op allowance on top of -max-alloc-increase")
	strictEnv := fs.Bool("strict-env", false, "gate even when environment fingerprints differ")
	out := fs.String("o", "", "also save the candidate snapshot here")
	mdOut := fs.String("md", "", "also write the markdown delta table here ('-' for stdout)")
	only := fs.String("experiment", "all", "experiment id to check, or all")
	_ = fs.Parse(args) // ExitOnError: Parse exits the process on bad flags

	if *baselinePath == "" {
		return fmt.Errorf("check needs -baseline")
	}
	baseline, err := benchreg.ReadFile(*baselinePath)
	if err != nil {
		return err
	}
	var candidate *benchreg.Snapshot
	if *candidatePath != "" {
		if candidate, err = benchreg.ReadFile(*candidatePath); err != nil {
			return err
		}
	} else {
		opts, scale, mode := resolve()
		fmt.Fprintf(os.Stderr, "benchreg: fresh candidate mode=%s scale=%g reps=%d\n", mode, scale, opts.Reps)
		if candidate, err = snapshot(opts, scale, mode, *only); err != nil {
			return err
		}
	}
	if *out != "" {
		if err := candidate.WriteFile(*out); err != nil {
			return err
		}
	}
	gate := benchreg.Gate{
		MaxSlowdown: *maxSlowdown, MADFactor: *madFactor,
		MaxAllocIncrease: *maxAllocIncrease, AllocSlack: *allocSlack,
	}
	report := benchreg.Check(baseline, candidate, gate)
	fmt.Print(report.Table())
	if *mdOut == "-" {
		fmt.Print(report.Markdown())
	} else if *mdOut != "" {
		if err := os.WriteFile(*mdOut, []byte(report.Markdown()), 0o644); err != nil {
			return err
		}
	}
	if report.Failed(*strictEnv) {
		return fmt.Errorf("%d kernel(s) regressed beyond %.0f%%+%gxMAD (throughput) or +%.0f%%+%g (allocs/op)",
			len(report.Regressions), gate.MaxSlowdown*100, gate.MADFactor,
			gate.MaxAllocIncrease*100, gate.AllocSlack)
	}
	if len(report.Regressions) > 0 {
		fmt.Printf("benchreg: %d regression(s) on a mismatched environment — advisory only (use -strict-env to gate)\n",
			len(report.Regressions))
	}
	fmt.Println("benchreg: check passed")
	return nil
}
