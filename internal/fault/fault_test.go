package fault

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseSpecRoundTrip(t *testing.T) {
	spec, err := ParseSpec("42:0.1:refuse,reset,latency")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 42 || spec.Rate != 0.1 || len(spec.Kinds) != 3 {
		t.Fatalf("parsed %+v", spec)
	}
	if got := spec.String(); got != "42:0.1:refuse,reset,latency" {
		t.Errorf("String() = %q", got)
	}
	// '+' separator and duplicate collapse.
	spec, err = ParseSpec("7:1:limp+limp+truncate")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Kinds) != 2 || spec.Kinds[0] != KindLimp || spec.Kinds[1] != KindTruncate {
		t.Fatalf("kinds = %v", spec.Kinds)
	}
}

func TestParseSpecRejectsGarbage(t *testing.T) {
	for _, s := range []string{
		"", "42", "42:0.1", "x:0.1:reset", "42:2:reset", "42:-0.1:reset",
		"42:0.1:", "42:0.1:explode", "42:0.1:reset:extra",
	} {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted garbage", s)
		}
	}
}

func TestDecideDeterministicAndSeedSensitive(t *testing.T) {
	a, _ := ParseSpec("42:0.3:refuse,reset,truncate,latency,limp")
	b, _ := ParseSpec("42:0.3:refuse,reset,truncate,latency,limp")
	c, _ := ParseSpec("43:0.3:refuse,reset,truncate,latency,limp")
	same, diff := true, false
	for i := uint64(0); i < 4096; i++ {
		if a.Decide(i) != b.Decide(i) {
			same = false
		}
		if a.Decide(i) != c.Decide(i) {
			diff = true
		}
	}
	if !same {
		t.Error("equal specs disagreed on a decision")
	}
	if !diff {
		t.Error("different seeds never disagreed over 4096 decisions")
	}
	if a.Digest(4096) != b.Digest(4096) {
		t.Error("equal specs produced different digests")
	}
	if a.Digest(4096) == c.Digest(4096) {
		t.Error("different seeds produced equal digests")
	}
}

func TestDecideRateIsHonored(t *testing.T) {
	spec, _ := ParseSpec("9:0.1:reset")
	faulted := 0
	const n = 20000
	for i := uint64(0); i < n; i++ {
		if spec.Decide(i) != KindNone {
			faulted++
		}
	}
	frac := float64(faulted) / n
	if frac < 0.07 || frac > 0.13 {
		t.Errorf("fault fraction %.3f far from rate 0.1", frac)
	}
	// Rate 0 and rate 1 are exact.
	zero := &Spec{Seed: 1, Rate: 0, Kinds: []Kind{KindReset}}
	one := &Spec{Seed: 1, Rate: 1, Kinds: []Kind{KindReset}}
	for i := uint64(0); i < 100; i++ {
		if zero.Decide(i) != KindNone {
			t.Fatal("rate 0 faulted an event")
		}
		if one.Decide(i) != KindReset {
			t.Fatal("rate 1 left an event clean")
		}
	}
}

func TestInjectorCountsAndOrder(t *testing.T) {
	spec, _ := ParseSpec("5:1:refuse")
	inj := NewInjector(spec)
	for i := 0; i < 10; i++ {
		if got := inj.NextDecision(); got != KindRefuse {
			t.Fatalf("decision %d = %v", i, got)
		}
	}
	if inj.Counts()["refuse"] != 10 {
		t.Errorf("counts = %v", inj.Counts())
	}
	// nil-spec injector is a no-op.
	off := NewInjector(nil)
	if off.NextDecision() != KindNone {
		t.Error("nil-spec injector faulted an event")
	}
}

// chattyServer answers every request with a fixed JSON body over a real
// TCP listener, optionally fault-wrapped.
func chattyServer(t *testing.T, spec *Spec) (string, *Injector, func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(spec)
	wrapped := NewListener(l, inj)
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"ok":true,"pad":"0123456789012345678901234567890123456789"}`)
	})}
	go func() { _ = srv.Serve(wrapped) }()
	return "http://" + l.Addr().String(), inj, func() { _ = srv.Close() }
}

func getOnce(t *testing.T, url string) (*http.Response, []byte, error) {
	t.Helper()
	// A fresh client per call: connection reuse would let one decision
	// cover many requests and make the assertions timing-dependent.
	client := &http.Client{Timeout: 5 * time.Second, Transport: &http.Transport{DisableKeepAlives: true}}
	resp, err := client.Get(url)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp, body, err
}

func TestListenerRefuseAndReset(t *testing.T) {
	// Rate 1: every connection faulted; alternating kinds by index.
	spec := &Spec{Seed: 3, Rate: 1, Kinds: []Kind{KindReset}}
	url, _, stop := chattyServer(t, spec)
	defer stop()
	_, _, err := getOnce(t, url)
	if err == nil {
		t.Fatal("reset-faulted request succeeded")
	}

	spec = &Spec{Seed: 3, Rate: 1, Kinds: []Kind{KindRefuse}}
	url, inj, stop2 := chattyServer(t, spec)
	defer stop2()
	done := make(chan error, 1)
	go func() { _, _, err := getOnce(t, url); done <- err }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("refused connection yielded a response")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("refused connection hung")
	}
	if inj.Counts()["refuse"] == 0 {
		t.Error("no refusal counted")
	}
}

func TestListenerTruncateBreaksBody(t *testing.T) {
	spec := &Spec{Seed: 3, Rate: 1, Kinds: []Kind{KindTruncate}, TruncateAfter: 16}
	url, _, stop := chattyServer(t, spec)
	defer stop()
	resp, body, err := getOnce(t, url)
	// Either the read fails outright or the body is cut short of valid
	// JSON — both are detectably corrupt; a clean 200 with the full body
	// would mean the fault never fired.
	if err == nil && resp.StatusCode == 200 && strings.Contains(string(body), `"ok":true`) {
		t.Fatalf("truncated response arrived intact: %q", body)
	}
}

func TestListenerLatencyDelays(t *testing.T) {
	spec := &Spec{Seed: 3, Rate: 1, Kinds: []Kind{KindLatency}, Latency: 120 * time.Millisecond}
	url, _, stop := chattyServer(t, spec)
	defer stop()
	start := time.Now()
	if _, _, err := getOnce(t, url); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Errorf("latency fault elapsed only %v", elapsed)
	}
}

func TestListenerCleanPassThrough(t *testing.T) {
	url, inj, stop := chattyServer(t, &Spec{Seed: 3, Rate: 0, Kinds: []Kind{KindReset}})
	defer stop()
	resp, body, err := getOnce(t, url)
	if err != nil || resp.StatusCode != 200 || !strings.Contains(string(body), `"ok":true`) {
		t.Fatalf("clean pass-through failed: %v %v %q", err, resp, body)
	}
	if inj.Counts()["clean"] == 0 {
		t.Error("clean decision not counted")
	}
}

func TestTransportFaults(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"ok":true,"pad":"0123456789012345678901234567890123456789"}`)
	}))
	defer backend.Close()

	cases := []struct {
		kind    Kind
		wantErr bool
	}{
		{KindRefuse, true},
		{KindReset, true},
		{KindTruncate, false}, // arrives, but cut
		{KindLatency, false},
		{KindLimp, false},
	}
	for _, tc := range cases {
		spec := &Spec{Seed: 1, Rate: 1, Kinds: []Kind{tc.kind}, Latency: time.Millisecond, LimpDelay: time.Millisecond, TruncateAfter: 10}
		client := &http.Client{Transport: &Transport{Inj: NewInjector(spec)}}
		resp, err := client.Get(backend.URL)
		if tc.wantErr {
			if err == nil {
				resp.Body.Close()
				t.Errorf("%v: round trip succeeded, want error", tc.kind)
			}
			continue
		}
		if err != nil {
			t.Errorf("%v: %v", tc.kind, err)
			continue
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if tc.kind == KindTruncate {
			if len(body) > 10 {
				t.Errorf("truncate: body %d bytes survived", len(body))
			}
		} else if !strings.Contains(string(body), `"ok":true`) {
			t.Errorf("%v: body %q", tc.kind, body)
		}
	}
}
