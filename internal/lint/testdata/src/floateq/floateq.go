// Package floateq holds seeded violations and clean counterparts for the
// floateq pass.
package floateq

// BadEqual compares computed floats exactly.
func BadEqual(a, b float64) bool {
	return a+b == b+a // seeded violation
}

// BadNotEqual compares against a non-representable constant.
func BadNotEqual(xs []float64) int {
	n := 0
	for _, x := range xs {
		if x != 0.1 { // seeded violation
			n++
		}
	}
	return n
}

// GoodInt compares integers. Not flagged.
func GoodInt(a, b int) bool { return a == b }

// GoodTolerance compares with an explicit tolerance. Not flagged.
func GoodTolerance(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// IgnoredSentinel checks a value only ever assigned exactly.
func IgnoredSentinel(v float64) bool {
	return v == 0 // finlint:ignore floateq exact sentinel, assigned not computed
}
