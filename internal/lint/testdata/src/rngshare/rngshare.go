// Package rngshare holds seeded violations and clean counterparts for the
// rngshare pass. Lines marked "seeded violation" appear in rngshare.golden.
package rngshare

import (
	"context"
	"math/rand"
	"time"

	"finbench"
	"finbench/internal/parallel"
	"finbench/internal/perf"
	"finbench/internal/resilience"
	"finbench/internal/rng"
	"finbench/internal/scenario"
	"finbench/internal/serve/pricecache"
	"finbench/internal/serve/stream"
	"finbench/internal/serve/stream/ticker"
)

// BadSharedStream captures one stream in the closure: every worker would
// advance the same MT19937 state concurrently.
func BadSharedStream(dst []float64, seed uint64) {
	stream := rng.NewStream(0, seed)
	parallel.For(len(dst), func(lo, hi int) {
		stream.Uniform(dst[lo:hi]) // seeded violation
	})
}

// BadSharedRand captures a *math/rand.Rand across ForWorkers goroutines.
func BadSharedRand(dst []float64, r *rand.Rand) {
	parallel.ForWorkers(len(dst), 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = r.Float64() // seeded violation
		}
	})
}

// GoodPerWorker derives an independent stream inside the closure — the
// paper's one-stream-per-thread design. Not flagged.
func GoodPerWorker(dst []float64, seed uint64) {
	parallel.ForIndexed(len(dst), func(worker, lo, hi int) {
		stream := rng.NewStream(worker, seed)
		stream.Uniform(dst[lo:hi])
	})
}

// GoodSequential uses a stream outside any parallel closure. Not flagged.
func GoodSequential(dst []float64, seed uint64) {
	stream := rng.NewStream(0, seed)
	stream.Uniform(dst)
}

// IgnoredShared documents a deliberate capture: draw serializes access.
func IgnoredShared(dst []float64, seed uint64, draw func(*rng.Stream, []float64)) {
	stream := rng.NewStream(0, seed)
	parallel.For(len(dst), func(lo, hi int) {
		// finlint:ignore rngshare draw serializes stream access behind a mutex
		draw(stream, dst[lo:hi])
	})
}

// BadSharedStreamCtx captures one stream in a closure handed to a
// cancellable loop — the coalescer-flush shape: a server goroutine builds
// a mega-batch, grabs a stream for it, and prices under a deadline. The
// ctx variants run the closure on exactly as many goroutines as For does.
func BadSharedStreamCtx(ctx context.Context, dst []float64, seed uint64) error {
	stream := rng.NewStream(0, seed)
	return parallel.ForCtx(ctx, len(dst), func(lo, hi int) {
		stream.Uniform(dst[lo:hi]) // seeded violation
	})
}

// BadSharedRandMergedCtx captures a *math/rand.Rand across the
// counter-merging cancellable loop.
func BadSharedRandMergedCtx(ctx context.Context, dst []float64, r *rand.Rand, c *perf.Counts) error {
	return parallel.ForIndexedMergedCtx(ctx, len(dst), c, func(worker, lo, hi int, local *perf.Counts) {
		for i := lo; i < hi; i++ {
			dst[i] = r.Float64() // seeded violation
		}
	})
}

// GoodPerWorkerCtx derives the stream inside the cancellable closure. Not
// flagged.
func GoodPerWorkerCtx(ctx context.Context, dst []float64, seed uint64, c *perf.Counts) error {
	return parallel.ForIndexedMergedCtx(ctx, len(dst), c, func(worker, lo, hi int, local *perf.Counts) {
		stream := rng.NewStream(worker, seed)
		stream.Uniform(dst[lo:hi])
	})
}

// BadSharedStreamHedge captures one stream in a hedged op: the hedge
// legs run on concurrent goroutines and race on the twister state.
func BadSharedStreamHedge(ctx context.Context, dst []float64, seed uint64) error {
	stream := rng.NewStream(0, seed)
	_, _, err := resilience.Hedge(ctx, time.Millisecond, 2, func(ctx context.Context, attempt int) (int, error) {
		stream.Uniform(dst) // seeded violation
		return 0, nil
	})
	return err
}

// BadSharedRandRetry captures a *math/rand.Rand in a retried op: a
// second attempt continues the first attempt's sequence, so the "same"
// operation computes different numbers per retry — and the closure
// shares the generator with whatever else holds it.
func BadSharedRandRetry(ctx context.Context, dst []float64, r *rand.Rand) error {
	return resilience.Retry(ctx, 3, resilience.Backoff{}, nil, func(ctx context.Context, attempt int) error {
		for i := range dst {
			dst[i] = r.Float64() // seeded violation
		}
		return nil
	})
}

// GoodPerAttemptHedge derives an attempt-local stream inside the hedged
// op — each leg draws an identical, reproducible sequence. Not flagged.
func GoodPerAttemptHedge(ctx context.Context, dst []float64, seed uint64) error {
	_, _, err := resilience.Hedge(ctx, time.Millisecond, 2, func(ctx context.Context, attempt int) (int, error) {
		stream := rng.NewStream(0, seed)
		stream.Uniform(dst)
		return 0, nil
	})
	return err
}

// BadSharedStreamSingleflight captures one stream in the compute closure
// handed to the pricing cache's singleflight: concurrent leaders for
// different keys advance the same twister, and a compute re-dispatched
// after a failed leader continues the prior attempt's sequence — the
// divergent bytes would then be cached and fanned out to every waiter.
func BadSharedStreamSingleflight(ctx context.Context, c *pricecache.Cache, key pricecache.Key, dst []float64, seed uint64) error {
	stream := rng.NewStream(0, seed)
	_, _, err := c.Do(ctx, key, func(ctx context.Context) ([]byte, bool, error) {
		stream.Uniform(dst) // seeded violation
		return nil, false, nil
	})
	return err
}

// GoodPerComputeSingleflight derives the stream inside the compute
// closure from the key's seed: every execution — leader or re-dispatched
// waiter — draws the same reproducible sequence. Not flagged.
func GoodPerComputeSingleflight(ctx context.Context, c *pricecache.Cache, key pricecache.Key, dst []float64, seed uint64) error {
	_, _, err := c.Do(ctx, key, func(ctx context.Context) ([]byte, bool, error) {
		stream := rng.NewStream(0, seed)
		stream.Uniform(dst)
		return nil, false, nil
	})
	return err
}

// BadSharedStreamScatter captures one stream in a scenario scatter
// closure: partitions evaluate on concurrent goroutines, so the twister
// state races and the merged surface depends on scheduling — the exact
// nondeterminism the engine's byte-identity contract forbids.
func BadSharedStreamScatter(ctx context.Context, parts []scenario.Partition, dst []float64, seed uint64) error {
	stream := rng.NewStream(0, seed)
	return scenario.Scatter(ctx, parts, func(ctx context.Context, p scenario.Partition) error {
		stream.Uniform(dst[p.Start : p.Start+p.Count]) // seeded violation
		return nil
	})
}

// GoodPerPartitionScatter derives the stream inside the closure from the
// partition's first cell: any process evaluating any partition draws the
// same reproducible sequence, so the merge is deterministic. Not flagged.
func GoodPerPartitionScatter(ctx context.Context, parts []scenario.Partition, dst []float64, seed uint64) error {
	return scenario.Scatter(ctx, parts, func(ctx context.Context, p scenario.Partition) error {
		s := rng.NewStream(0, rng.DeriveSeed(seed, uint64(p.Start)))
		s.Uniform(dst[p.Start : p.Start+p.Count])
		return nil
	})
}

// BadSharedStreamReprice captures one stream in the streaming hub's
// RepriceFunc: the closure runs on the repricing-loop goroutine every
// tick, racing the constructor's goroutine on the twister state — and
// the feed's values would no longer bit-match a cold repricing.
func BadSharedStreamReprice(dst []float64, seed uint64) *stream.Hub {
	s := rng.NewStream(0, seed)
	return stream.New(stream.Config{}, func(ctx context.Context, b *finbench.Batch, m finbench.Market) error {
		s.Uniform(dst) // seeded violation
		return finbench.PriceBatchCtx(ctx, b, m, finbench.LevelAdvanced)
	})
}

// GoodClosedFormReprice needs no RNG at all — the closed-form engines the
// feed is restricted to are deterministic by construction. Not flagged.
func GoodClosedFormReprice() *stream.Hub {
	return stream.New(stream.Config{}, func(ctx context.Context, b *finbench.Batch, m finbench.Market) error {
		return finbench.PriceBatchCtx(ctx, b, m, finbench.LevelAdvanced)
	})
}

// BadSharedRandTick captures a *math/rand.Rand in the ticker's per-tick
// callback: the callback fires on the ticker goroutine, racing whatever
// launched Run — and the walk stops being seed-reproducible.
func BadSharedRandTick(src *ticker.Source, stop <-chan struct{}, r *rand.Rand, jitter []float64) {
	ticker.Run(src, time.Millisecond, stop, func(st *ticker.State) {
		jitter[0] = r.Float64() // seeded violation
	})
}

// GoodDeterministicTick consumes only the seed-deterministic State the
// Source hands it. Not flagged.
func GoodDeterministicTick(src *ticker.Source, stop <-chan struct{}, deposit func(*ticker.State)) {
	ticker.Run(src, time.Millisecond, stop, func(st *ticker.State) {
		deposit(st)
	})
}
