// Package brownian implements the depth-level Brownian-bridge path
// construction kernel at the paper's optimization levels (Sec. IV-C,
// Fig. 6):
//
//   - RefScalar: the reference depth-level construction of Lis. 4, one
//     simulation at a time, ping-ponging src/dst buffers, consuming a
//     pre-generated stream of normal random numbers.
//   - Intermediate: SIMD across paths — one simulation per lane, with
//     random numbers consumed in vector-width chunks (the "minor
//     modification" that enables outer-loop vectorization).
//   - AdvancedInterleaved: random-number generation interleaved with
//     bridge construction in cache-sized chunks, removing the DRAM stream
//     of random inputs (the bandwidth bottleneck of the streamed variant).
//   - AdvancedC2C: additionally leaves each constructed path in cache for
//     an immediate consumer instead of writing it back to memory
//     ("cache-to-cache", the top bar of Fig. 6).
//
// Following the paper ("the timings in Fig. 6 do not account for the time
// taken for random number generation"), the operation counts cover bridge
// construction and its memory traffic only; RNG work is generated but not
// charged, and Table II is the separate accounting of RNG cost.
package brownian

import (
	"context"

	"finbench/internal/mathx"
	"finbench/internal/parallel"
	"finbench/internal/perf"
	"finbench/internal/rng"
	"finbench/internal/vec"
)

// Bridge holds the precomputed interpolation weights of a depth-level
// Brownian bridge over [0, T]: at level d, midpoint c interpolates its
// bracketing points with weights WL[d][c], WR[d][c] and adds an
// independent normal scaled by Sig[d][c]. For the uniform grids used here
// WL = WR = 1/2 and Sig[d][c] = sqrt(T/2^(d+2)), but the weights are kept
// in the general (non-uniform) form the reference code uses, computed from
// the grid times.
type Bridge struct {
	// Depth is the level count minus one; levels run d = 0..Depth.
	Depth int
	// Steps is the number of increments, 2^(Depth+1).
	Steps int
	// T is the horizon.
	T float64
	// LastSig scales the terminal point: sqrt(T).
	LastSig float64
	// WL, WR, Sig are the per-level weight tables (length 2^d at level d).
	WL, WR, Sig [][]float64
}

// New builds the weight tables for a bridge of the given depth over [0,T].
func New(depth int, t float64) *Bridge {
	b := &Bridge{
		Depth:   depth,
		Steps:   1 << uint(depth+1),
		T:       t,
		LastSig: mathx.Sqrt(t),
	}
	b.WL = make([][]float64, depth+1)
	b.WR = make([][]float64, depth+1)
	b.Sig = make([][]float64, depth+1)
	for d := 0; d <= depth; d++ {
		n := 1 << uint(d)
		b.WL[d] = make([]float64, n)
		b.WR[d] = make([]float64, n)
		b.Sig[d] = make([]float64, n)
		for c := 0; c < n; c++ {
			// Interval [tl, tr] at this level; midpoint tm.
			tl := t * float64(c) / float64(n)
			tr := t * float64(c+1) / float64(n)
			tm := (tl + tr) / 2
			b.WL[d][c] = (tr - tm) / (tr - tl)
			b.WR[d][c] = (tm - tl) / (tr - tl)
			b.Sig[d][c] = mathx.Sqrt((tm - tl) * (tr - tm) / (tr - tl))
		}
	}
	return b
}

// PathLen returns the number of points per simulation (Steps+1, including
// the pinned origin v(0) = 0).
func (b *Bridge) PathLen() int { return b.Steps + 1 }

// BuildScalar constructs one path from the Steps normals in z, writing
// PathLen() points to out (out[0] = 0). This is Lis. 4 for one simulation.
func (b *Bridge) BuildScalar(z []float64, out []float64) {
	steps := b.Steps
	src := make([]float64, steps+1)
	dst := make([]float64, steps+1)
	b.buildScalarInto(z, src, dst, out)
}

// buildScalarInto is BuildScalar with caller-provided ping-pong scratch.
func (b *Bridge) buildScalarInto(z, src, dst, out []float64) {
	i := 0
	src[0] = 0
	src[1] = z[i] * b.LastSig
	i++
	for d := 0; d <= b.Depth; d++ {
		dst[0] = src[0]
		for c := 0; c < 1<<uint(d); c++ {
			dst[2*c+1] = src[c]*b.WL[d][c] + src[c+1]*b.WR[d][c] + b.Sig[d][c]*z[i]
			dst[2*c+2] = src[c+1]
			i++
		}
		src, dst = dst, src
	}
	copy(out, src[:b.Steps+1])
}

// RefScalar runs sims simulations from the pre-generated normal stream z
// (len >= sims*Steps), writing paths consecutively into out
// (len >= sims*PathLen()). Counts record the scalar mix and the DRAM
// traffic of streaming z in and the paths out.
func (b *Bridge) RefScalar(z []float64, out []float64, sims int, c *perf.Counts) {
	plen := b.PathLen()
	runParallel(sims, c, func(lo, hi int, c *perf.Counts) {
		src := make([]float64, plen)
		dst := make([]float64, plen)
		for s := lo; s < hi; s++ {
			b.buildScalarInto(z[s*b.Steps:(s+1)*b.Steps], src, dst, out[s*plen:(s+1)*plen])
		}
		if c != nil {
			un := uint64(hi - lo)
			nodes := uint64(b.Steps - 1) // interior midpoints across levels
			// Per midpoint the naive code performs five dependent/indirect
			// reads (src[c], src[c+1] and the three 2-D weight-table
			// lookups), one streaming read of the normal, two stores, five
			// flops and ~4 index operations.
			c.Add(perf.OpScalar, un*(nodes*9+2))
			c.Add(perf.OpScalarLoadDep, un*nodes*5)
			c.Add(perf.OpScalarLoad, un*nodes)
			c.Add(perf.OpScalarStore, un*nodes*2)
		}
	})
	if c != nil {
		c.AddBytes(uint64(sims*b.Steps*8), uint64(sims*plen*8))
		c.Items += uint64(sims)
	}
}

// Intermediate runs sims simulations with SIMD across paths: `width`
// simulations are constructed per vector pass, with random numbers loaded
// in vector-width chunks (z must be laid out so that the W values consumed
// together are consecutive — the layout RandomsBlocked produces). The
// random stream still comes from DRAM, so the kernel is bandwidth-bound.
func (b *Bridge) Intermediate(z []float64, out []float64, sims, width int, c *perf.Counts) {
	b.vectorRun(out, sims, width, c, func(group, consumed int, ctx vec.Ctx) vec.Vec {
		// One aligned vector load per consumed chunk: W normals, one per
		// lane/simulation.
		return ctx.Load(z, (group*b.Steps+consumed)*width)
	})
	if c != nil {
		c.AddBytes(uint64(sims*b.Steps*8), uint64(sims*b.PathLen()*8))
		c.Items += uint64(sims)
	}
}

// InterleaveChunk is the number of normals generated per cache-resident
// chunk in the interleaved variants (sized well inside an L2 slice).
const InterleaveChunk = 4096

// AdvancedInterleaved interleaves normal generation (per-worker stream,
// ICDF transform) with bridge construction so random numbers never travel
// through DRAM; paths are still written out. seed derives per-worker
// streams.
func (b *Bridge) AdvancedInterleaved(seed uint64, out []float64, sims, width int, c *perf.Counts) {
	_ = b.AdvancedInterleavedCtx(context.Background(), seed, out, sims, width, c)
}

// AdvancedInterleavedCtx is AdvancedInterleaved with cancellation checked
// once per path group; an uncancelled run is bit-identical (per-group
// streams and the group decomposition are unchanged). On a non-nil return
// the output paths are partial.
func (b *Bridge) AdvancedInterleavedCtx(cx context.Context, seed uint64, out []float64, sims, width int, c *perf.Counts) error {
	if err := b.interleavedCtx(cx, seed, out, sims, width, c, nil); err != nil {
		return err
	}
	if c != nil {
		c.AddBytes(0, uint64(sims*b.PathLen()*8))
		c.Items += uint64(sims)
	}
	return nil
}

// AdvancedC2C is AdvancedInterleaved with the constructed paths handed to
// consume (per group of `width` paths, blocked lane layout: paths[p] is
// point p across lanes) while still cache-resident, eliminating the
// write-back traffic too. out may be nil.
func (b *Bridge) AdvancedC2C(seed uint64, sims, width int, c *perf.Counts, consume func(group int, paths []vec.Vec)) {
	b.interleaved(seed, nil, sims, width, c, consume)
	if c != nil {
		c.Items += uint64(sims)
	}
}

func (b *Bridge) interleaved(seed uint64, out []float64, sims, width int, c *perf.Counts, consume func(int, []vec.Vec)) {
	_ = b.interleavedCtx(context.Background(), seed, out, sims, width, c, consume)
}

func (b *Bridge) interleavedCtx(cx context.Context, seed uint64, out []float64, sims, width int, c *perf.Counts, consume func(int, []vec.Vec)) error {
	done := cx.Done()
	groups := (sims + width - 1) / width
	perGroup := b.Steps * width
	return runParallelCtx(cx, groups, c, func(glo, ghi int, c *perf.Counts) {
		// Per-worker stream; chunked generation into a cache-resident
		// buffer. RNG work is deliberately not charged (see package doc).
		stream := rng.NewStream(glo, seed)
		bufCap := InterleaveChunk / perGroup * perGroup
		if bufCap < perGroup {
			bufCap = perGroup
		}
		buf := make([]float64, bufCap)
		pos := bufCap // force an initial fill
		scratch := make([]vec.Vec, b.PathLen())
		outv := make([]vec.Vec, b.PathLen())
		ctx := vec.New(width, c)
		for g := glo; g < ghi; g++ {
			if done != nil {
				select {
				case <-done:
					return
				default:
				}
			}
			if pos == bufCap {
				stream.NormalICDF(buf)
				pos = 0
			}
			chunk := buf[pos : pos+perGroup]
			pos += perGroup
			b.buildVec(ctx, func(consumed int) vec.Vec {
				return ctx.Load(chunk, consumed*width)
			}, scratch, outv)
			if consume != nil {
				consume(g, outv)
			} else {
				writeGroup(out, outv, g, b.PathLen(), width, sims, ctx)
			}
		}
	})
}

// vectorRun drives the SIMD-across-paths construction for streamed
// variants.
func (b *Bridge) vectorRun(out []float64, sims, width int, c *perf.Counts, load func(group, consumed int, ctx vec.Ctx) vec.Vec) {
	groups := (sims + width - 1) / width
	plen := b.PathLen()
	runParallel(groups, c, func(glo, ghi int, c *perf.Counts) {
		ctx := vec.New(width, c)
		scratch := make([]vec.Vec, plen)
		outv := make([]vec.Vec, plen)
		for g := glo; g < ghi; g++ {
			b.buildVec(ctx, func(consumed int) vec.Vec { return load(g, consumed, ctx) }, scratch, outv)
			writeGroup(out, outv, g, plen, width, sims, ctx)
		}
	})
}

// buildVec constructs `width` paths at once. next(consumed) returns the
// consumed-th vector of normals for this group. The ping-pong of Lis. 4
// operates on vectors of lanes.
func (b *Bridge) buildVec(ctx vec.Ctx, next func(consumed int) vec.Vec, scratch, out []vec.Vec) {
	src, dst := scratch, out
	consumed := 0
	src[0] = ctx.Zero()
	src[1] = ctx.Mul(next(consumed), ctx.Broadcast(b.LastSig))
	consumed++
	for d := 0; d <= b.Depth; d++ {
		dst[0] = src[0]
		for cidx := 0; cidx < 1<<uint(d); cidx++ {
			z := next(consumed)
			consumed++
			m := ctx.FMA(src[cidx], ctx.Broadcast(b.WL[d][cidx]),
				ctx.Mul(src[cidx+1], ctx.Broadcast(b.WR[d][cidx])))
			dst[2*cidx+1] = ctx.FMA(z, ctx.Broadcast(b.Sig[d][cidx]), m)
			dst[2*cidx+2] = src[cidx+1]
			if ctx.C != nil {
				// The copy dst[2c+2] = src[c+1] is a load+store pair in
				// the real code.
				ctx.C.Add(perf.OpVecLoad, 2)
				ctx.C.Add(perf.OpVecStore, 2)
			}
		}
		src, dst = dst, src
	}
	// The bridge has Depth+1 levels; results sit in src after the final
	// swap. Ensure the caller's out buffer holds them.
	if &src[0] != &out[0] {
		copy(out, src)
	}
}

// writeGroup stores a group of lane-blocked paths to the flat output
// (path-major), skipping padded lanes.
func writeGroup(out []float64, paths []vec.Vec, group, plen, width, sims int, ctx vec.Ctx) {
	if out == nil {
		return
	}
	if ctx.C != nil {
		// Transpose + streaming stores: one store per point per lane.
		ctx.C.Add(perf.OpVecStore, uint64(plen))
		ctx.C.Add(perf.OpVecMisc, uint64(plen)) // transpose shuffles
	}
	for l := 0; l < width; l++ {
		s := group*width + l
		if s >= sims {
			break
		}
		row := out[s*plen : (s+1)*plen]
		for p := 0; p < plen; p++ {
			row[p] = paths[p].X[l]
		}
	}
}

// RandomsBlocked lays out sims*Steps normals from stream so that the
// Intermediate kernel's vector loads read W consecutive values: chunk k of
// group g holds the k-th normal of each of the group's W simulations.
// This is the data reformatting Sec. IV-C2 describes.
func RandomsBlocked(stream *rng.Stream, sims, steps, width int) []float64 {
	groups := (sims + width - 1) / width
	z := make([]float64, groups*steps*width)
	stream.NormalICDF(z)
	return z
}

// RandomsScalar generates the sims*Steps normal stream consumed by
// RefScalar (simulation-major order).
func RandomsScalar(stream *rng.Stream, sims, steps int) []float64 {
	z := make([]float64, sims*steps)
	stream.NormalICDF(z)
	return z
}

func runParallel(n int, c *perf.Counts, run func(lo, hi int, c *perf.Counts)) {
	if c == nil {
		parallel.For(n, func(lo, hi int) { run(lo, hi, nil) })
		return
	}
	parallel.ForIndexedMerged(n, c, func(_, lo, hi int, local *perf.Counts) {
		run(lo, hi, local)
	})
}

// runParallelCtx is runParallel over the cancellable parallel regions.
func runParallelCtx(cx context.Context, n int, c *perf.Counts, run func(lo, hi int, c *perf.Counts)) error {
	if c == nil {
		return parallel.ForCtx(cx, n, func(lo, hi int) { run(lo, hi, nil) })
	}
	return parallel.ForIndexedMergedCtx(cx, n, c, func(_, lo, hi int, local *perf.Counts) {
		run(lo, hi, local)
	})
}
