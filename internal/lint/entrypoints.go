package lint

// This file is the suite's single registry of module entry points: the
// packages whose closures run concurrently (rngshare), the kernel entry
// points the serving tier may call (ctxprop), and the context-propagating
// variants that replace them on the request path. Keeping the tables in
// one place means a new kernel entry point is added once and every pass
// that reasons about the serving tier picks it up together.

// parallelPkgPath is the module's OpenMP-style loop package; the closures
// it receives run on multiple goroutines at once. resiliencePkgPath is
// the serving tier's retry/hedge machinery: a hedged op runs on several
// goroutines concurrently, and a retried op re-executes, so a captured
// stream races or silently diverges between attempts either way.
const (
	parallelPkgPath   = "finbench/internal/parallel"
	resiliencePkgPath = "finbench/internal/resilience"
)

// pricecachePkgPath is the content-addressed response cache. Its
// singleflight Do re-executes the compute closure when a failed leader's
// waiters re-dispatch, and concurrent leaders for different keys run
// their computes on concurrent goroutines — so a captured stream both
// races and silently diverges between executions, and the divergent
// bytes would be cached and fanned out to every waiter.
const pricecachePkgPath = "finbench/internal/serve/pricecache"

// rootPkgPath is the module's public API package, whose exported pricing
// functions are the kernel entry points the serving tier calls.
const rootPkgPath = "finbench"

// scenarioPkgPath is the portfolio risk scenario engine. Scatter runs
// its partition closure on one goroutine per partition concurrently, so
// a captured RNG stream races across partitions and breaks the
// byte-identity contract the scatter-gather merge depends on.
const scenarioPkgPath = "finbench/internal/scenario"

// streamPkgPath is the streaming Greeks hub and tickerPkgPath its
// simulated market source. The hub's RepriceFunc runs on the repricing-
// loop goroutine concurrently with whatever goroutine constructed the
// hub, and ticker.Run's per-tick callback runs on the ticker goroutine
// concurrently with its launcher — a captured stream in either races
// and breaks the feed's bit-reproducibility contract (every pushed
// value must match a cold repricing at the echoed market state).
const (
	streamPkgPath = "finbench/internal/serve/stream"
	tickerPkgPath = "finbench/internal/serve/stream/ticker"
)

// concurrentClosureFuncs maps package path to the entry points whose
// closure argument executes concurrently (or re-executes, for Retry).
// ForIndexed is included: its worker id makes the per-worker pattern
// *possible*, but capturing one shared stream in its closure is exactly
// as racy as in For.
var concurrentClosureFuncs = map[string]map[string]bool{
	parallelPkgPath: {
		"For":              true,
		"ForWorkers":       true,
		"ForDynamic":       true,
		"ForGuided":        true,
		"ForIndexed":       true,
		"ForIndexedMerged": true,
		"Run":              true,
		"Reduce":           true,
		"ReduceFloat64":    true,
		// Cancellable variants (the serving path): the closure contract is
		// identical, so a captured stream races exactly the same way.
		"ForCtx":              true,
		"ForDynamicCtx":       true,
		"ForIndexedMergedCtx": true,
	},
	resiliencePkgPath: {
		// Hedge legs run concurrently; Retry re-executes the op and its
		// closure shares state with the caller's health/stat goroutines.
		"Retry": true,
		"Hedge": true,
	},
	pricecachePkgPath: {
		// The singleflight compute closure: re-executed on waiter
		// re-dispatch, run concurrently across keys, result cached.
		"Do": true,
	},
	scenarioPkgPath: {
		// One goroutine per partition; the closure must derive any stream
		// from the partition's cell range, never capture one.
		"Scatter": true,
	},
	streamPkgPath: {
		// New's RepriceFunc executes on the hub's repricing-loop goroutine,
		// concurrently with the constructor's goroutine and every tick.
		"New": true,
	},
	tickerPkgPath: {
		// Run's callback fires on the ticker goroutine once per interval,
		// concurrently with whatever launched Run.
		"Run": true,
	},
}

// closureHints is the per-package fix suggestion appended to the
// diagnostic.
var closureHints = map[string]string{
	parallelPkgPath:   "derive a per-worker stream inside the closure (e.g. rng.NewStream(worker, seed) with parallel.ForIndexed)",
	resiliencePkgPath: "derive a per-attempt stream inside the closure (hedge legs run concurrently, and a retried attempt must not continue a prior attempt's sequence)",
	pricecachePkgPath: "derive the stream inside the compute closure from the cache key's seed (a re-dispatched compute must reproduce the leader's bytes, or the cache fans out divergent responses)",
	scenarioPkgPath:   "derive a per-partition stream inside the closure from the partition's cells (e.g. rng.NewStream(0, rng.DeriveSeed(seed, cellIndex))); partitions evaluate concurrently and must merge to deterministic bytes",
	streamPkgPath:     "derive the stream inside the RepriceFunc (it runs on the hub's repricing-loop goroutine; the feed's values must stay bit-reproducible against a cold repricing)",
	tickerPkgPath:     "derive any stream inside the tick callback (it runs on the ticker goroutine; the market walk itself is already seed-deterministic via the Source)",
}

// kernelEntryCtx maps the full name of each plain (deadline-blind) kernel
// entry point to the *Ctx variant a request-path caller must use instead;
// an empty replacement means no cancellable variant exists and the entry
// point simply must not be reachable from a handler. The key format is
// types.Func.FullName ("pkg/path.Fn" or "(*pkg/path.T).Method").
//
// finbench.ProfileBatch is deliberately absent: the coalescer samples it
// for the /statsz op mix on a bounded batch it has already priced, so the
// call is observability outside the latency contract, not request work.
var kernelEntryCtx = map[string]string{
	rootPkgPath + ".Price":                                  rootPkgPath + ".PriceCtx",
	rootPkgPath + ".PriceBatch":                             rootPkgPath + ".PriceBatchCtx",
	rootPkgPath + ".PriceBatchGrid":                         rootPkgPath + ".PriceBatchGridCtx",
	"(*" + rootPkgPath + ".PathSimulator).Simulate":         "",
	"(*" + rootPkgPath + ".PathSimulator).SimulateTerminal": "",
}

// breakerType is the circuit breaker whose Allow/Success/Failure calls
// leakcheck requires to be bracketed within one function.
const breakerType = "(*" + resiliencePkgPath + ".Breaker)"

// coalescePkgPath and wirePkgPath are the serving tier's pooled-object
// packages: the request coalescer's ticket/batch freelists and the wire
// codec's request/response/buffer freelists.
const (
	coalescePkgPath = "finbench/internal/serve/coalesce"
	wirePkgPath     = "finbench/internal/serve/wire"
)

// pooledGetPut maps each pooled acquire entry point to the release a
// caller must pair it with in the same function. A Get whose result is
// returned directly transfers ownership to the caller and is exempt
// (e.g. a decode helper handing the pooled request up to the handler).
// An unpaired Get silently falls back to garbage-collected allocation:
// the server stays correct but the zero-allocation serve path regresses
// one object per request, which is exactly what the freelists exist to
// prevent.
var pooledGetPut = map[string]string{
	coalescePkgPath + ".GetTicket":     coalescePkgPath + ".PutTicket",
	coalescePkgPath + ".GetBatch":      coalescePkgPath + ".PutBatch",
	wirePkgPath + ".GetBuffer":         wirePkgPath + ".PutBuffer",
	wirePkgPath + ".GetPriceResponse":  wirePkgPath + ".PutPriceResponse",
	wirePkgPath + ".GetGreeksResponse": wirePkgPath + ".PutGreeksResponse",
}
