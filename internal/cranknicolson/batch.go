package cranknicolson

import (
	"sync"

	"finbench/internal/layout"
	"finbench/internal/parallel"
	"finbench/internal/perf"
	"finbench/internal/workload"
)

// Batch drivers: the paper parallelizes "across different options using
// OpenMP pragmas" with SIMD inside each option's GSOR solve (Sec. IV-E2),
// which keeps the working set in L2 and scales for small option counts.
// Each driver prices American puts for every option in the AOS batch
// (strike = X, spot = S, maturity = T), writing the put price into the
// Put output slot.

// Level selects the optimization level of a batch solve.
type Level int

const (
	// LevelRef is the scalar reference (Lis. 6/7).
	LevelRef Level = iota
	// LevelIntermediate is the manual wavefront SIMD over flat arrays.
	LevelIntermediate
	// LevelAdvanced adds the even/odd data-structure transformation.
	LevelAdvanced
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelRef:
		return "reference"
	case LevelIntermediate:
		return "wavefront-simd"
	case LevelAdvanced:
		return "wavefront-simd+reorder"
	default:
		return "unknown"
	}
}

// Run prices the batch at the given level. jpoints/nsteps size the lattice
// (Fig. 8 uses 256 and 1000); width is the SIMD width for the vector
// levels. Returns the total GSOR sweep count across options.
func Run(level Level, a layout.AOS, jpoints, nsteps, width int, mkt workload.MarketParams, c *perf.Counts) int {
	n := a.Len()
	var mu sync.Mutex
	totalSweeps := 0
	// The level dispatch is loop-invariant: resolve it to a solve function
	// once, outside the per-option hot loop.
	var solve func(s *Solver, c *perf.Counts) ([]float64, int)
	switch level {
	case LevelRef:
		solve = func(s *Solver, c *perf.Counts) ([]float64, int) { return s.SolveScalar(c) }
	case LevelIntermediate:
		solve = func(s *Solver, c *perf.Counts) ([]float64, int) { return s.SolveWavefront(width, c) }
	case LevelAdvanced:
		solve = func(s *Solver, c *perf.Counts) ([]float64, int) { return s.SolveWavefrontSplit(width, c) }
	default:
		panic("cranknicolson: unknown level")
	}
	run := func(lo, hi int, c *perf.Counts) {
		sweeps := 0
		for i := lo; i < hi; i++ {
			s := NewSolver(a.T(i), jpoints, nsteps, DefaultAlpha, mkt)
			u, sw := solve(s, c)
			sweeps += sw
			a.SetResult(i, 0, s.Price(u, a.S(i), a.X(i)))
		}
		mu.Lock()
		totalSweeps += sweeps
		mu.Unlock()
	}
	if c == nil {
		// PSOR sweep counts vary by option, so the uncounted path uses
		// guided handout: big head chunks amortize the shared counter,
		// grain-1 tail chunks balance the irregular solves.
		parallel.ForGuided(n, 1, func(lo, hi int) { run(lo, hi, nil) })
	} else {
		parallel.ForIndexedMerged(n, c, func(_, lo, hi int, local *perf.Counts) {
			run(lo, hi, local)
		})
		// Grid state fits in L2 (Sec. IV-E2); DRAM traffic is the option
		// parameters in and one price out.
		c.AddBytes(uint64(24*n), uint64(8*n))
		c.Items += uint64(n)
	}
	return totalSweeps
}
