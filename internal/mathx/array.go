package mathx

// VML-style batch functions. The Intel Vector Math Library exposes
// whole-array transcendentals (vdExp, vdLn, vdErf, vdCdfNorm, ...); the
// paper's advanced Black-Scholes variant calls these on SOA buffers
// (Sec. IV-A2/3, "Advanced (Using VML)" in Fig. 4). Each function requires
// len(dst) >= len(src) and processes src[i] -> dst[i].
//
// All array functions tolerate dst == src (in-place operation), which the
// kernels use to avoid temporary buffers.

// ExpArray computes dst[i] = e**src[i].
func ExpArray(dst, src []float64) {
	_ = dst[len(src)-1]
	for i, x := range src {
		dst[i] = Exp(x)
	}
}

// LogArray computes dst[i] = ln(src[i]).
func LogArray(dst, src []float64) {
	_ = dst[len(src)-1]
	for i, x := range src {
		dst[i] = Log(x)
	}
}

// SqrtArray computes dst[i] = sqrt(src[i]).
func SqrtArray(dst, src []float64) {
	_ = dst[len(src)-1]
	for i, x := range src {
		dst[i] = Sqrt(x)
	}
}

// InvArray computes dst[i] = 1/src[i].
func InvArray(dst, src []float64) {
	_ = dst[len(src)-1]
	for i, x := range src {
		dst[i] = 1 / x
	}
}

// ErfArray computes dst[i] = erf(src[i]).
func ErfArray(dst, src []float64) {
	_ = dst[len(src)-1]
	for i, x := range src {
		dst[i] = Erf(x)
	}
}

// CNDArray computes dst[i] = Phi(src[i]) (VML's vdCdfNorm).
func CNDArray(dst, src []float64) {
	_ = dst[len(src)-1]
	for i, x := range src {
		dst[i] = CND(x)
	}
}

// InvCNDArray computes dst[i] = Phi^-1(src[i]) (VML's vdCdfNormInv), the
// batch transform used to turn uniform random streams into normal streams.
func InvCNDArray(dst, src []float64) {
	_ = dst[len(src)-1]
	for i, x := range src {
		dst[i] = InvCND(x)
	}
}

// AxpyArray computes dst[i] = a*x[i] + y[i] (helper for lattice updates).
func AxpyArray(dst []float64, a float64, x, y []float64) {
	_ = dst[len(x)-1]
	_ = y[len(x)-1]
	for i := range x {
		dst[i] = a*x[i] + y[i]
	}
}

// MaxScalarArray computes dst[i] = max(src[i], s) without branching, the
// vectorizable payoff clamp max(S-K, 0) at the heart of every kernel.
func MaxScalarArray(dst, src []float64, s float64) {
	_ = dst[len(src)-1]
	for i, x := range src {
		if x > s {
			dst[i] = x
		} else {
			dst[i] = s
		}
	}
}
