package serve

import (
	"encoding/json"
	"fmt"
	"math"

	"finbench"
)

// Wire types of the pricing API. Every numeric knob echoes back in the
// response as the *effective* value (after defaulting, clamping, and any
// degrade-mode substitution), so a client can reproduce each price
// bit-for-bit with the library: closed-form batches via
// finbench.PriceBatch(LevelAdvanced) — which is composition-independent,
// so a 1-option batch matches any coalesced mega-batch — and every other
// method via finbench.Price with the echoed config.

// MaxRequestOptions bounds the option count of a single request before any
// server-configured limit applies; it keeps decode memory proportional to
// the request body and gives the fuzzer a hard ceiling.
const MaxRequestOptions = 1 << 20

// WireOption is one option contract on the wire.
type WireOption struct {
	// Type is "call" (default) or "put".
	Type string `json:"type,omitempty"`
	// Style is "european" (default) or "american".
	Style  string  `json:"style,omitempty"`
	Spot   float64 `json:"spot"`
	Strike float64 `json:"strike"`
	Expiry float64 `json:"expiry"`
}

// WireConfig mirrors finbench.Config; zero fields mean "default".
type WireConfig struct {
	BinomialSteps int    `json:"binomial_steps,omitempty"`
	GridPoints    int    `json:"grid_points,omitempty"`
	TimeSteps     int    `json:"time_steps,omitempty"`
	MCPaths       int    `json:"mc_paths,omitempty"`
	Seed          uint64 `json:"seed,omitempty"`
}

// PriceRequest is the POST /price body.
type PriceRequest struct {
	// Method selects the pricing algorithm by its finbench name:
	// closed-form, binomial-tree, crank-nicolson, monte-carlo,
	// trinomial-tree. Empty means closed-form.
	Method  string       `json:"method,omitempty"`
	Options []WireOption `json:"options"`
	Config  WireConfig   `json:"config,omitempty"`
	// DeadlineMS is the client's pricing deadline in milliseconds; work
	// still running when it expires is cancelled and the request fails
	// with 408. Zero means the server's maximum applies.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// WireResult is one priced option.
type WireResult struct {
	Price  float64 `json:"price"`
	StdErr float64 `json:"std_err,omitempty"`
}

// PriceResponse is the POST /price 200 body.
type PriceResponse struct {
	Results []WireResult `json:"results"`
	// Method and Config are the effective method/parameters (degrade mode
	// may substitute cheaper ones); recomputing with them reproduces
	// Results bit-for-bit.
	Method string     `json:"method"`
	Config WireConfig `json:"config"`
	// Engine is "batch-advanced" (closed-form SOA batch path) or "scalar"
	// (per-option kernels).
	Engine   string `json:"engine"`
	Degraded bool   `json:"degraded,omitempty"`
	// Coalesced reports whether the request was merged with concurrent
	// requests into one mega-batch; BatchOptions is the size of the batch
	// actually priced (>= len(Results) when coalesced).
	Coalesced    bool  `json:"coalesced,omitempty"`
	BatchOptions int   `json:"batch_options,omitempty"`
	ElapsedUS    int64 `json:"elapsed_us"`
}

// GreeksRequest is the POST /greeks body (European closed-form greeks).
type GreeksRequest struct {
	Options    []WireOption `json:"options"`
	DeadlineMS int64        `json:"deadline_ms,omitempty"`
}

// WireGreeks is one option's sensitivities.
type WireGreeks struct {
	Delta float64 `json:"delta"`
	Gamma float64 `json:"gamma"`
	Vega  float64 `json:"vega"`
	Theta float64 `json:"theta"`
	Rho   float64 `json:"rho"`
}

// GreeksResponse is the POST /greeks 200 body.
type GreeksResponse struct {
	Results   []WireGreeks `json:"results"`
	ElapsedUS int64        `json:"elapsed_us"`
}

// ErrorResponse is the body of every non-200 status.
type ErrorResponse struct {
	Error string `json:"error"`
}

// HealthResponse is the GET /healthz body: liveness plus the load signals
// the shard router scores replicas by. Status is "ok" or "draining";
// draining replicas answer 503 with Retry-After so routers re-route
// instead of counting a crash.
type HealthResponse struct {
	Status        string  `json:"status"`
	InFlightUnits int64   `json:"in_flight_units"`
	MaxUnits      int64   `json:"max_units"`
	QueueDepth    int64   `json:"queue_depth"`
	UptimeS       float64 `json:"uptime_s"`
}

// ParseMethod maps a wire method name to a finbench.Method. An empty name
// selects the closed form.
func ParseMethod(name string) (finbench.Method, error) {
	switch name {
	case "", "closed-form":
		return finbench.ClosedForm, nil
	case "binomial-tree":
		return finbench.BinomialTree, nil
	case "crank-nicolson":
		return finbench.FiniteDifference, nil
	case "monte-carlo":
		return finbench.MonteCarlo, nil
	case "trinomial-tree":
		return finbench.TrinomialTree, nil
	default:
		return 0, fmt.Errorf("unknown method %q", name)
	}
}

// DecodeRequest parses and validates a /price body. It is the fuzz entry
// point: any input must either return an error or a request whose options
// are all finite, positive, and within MaxRequestOptions.
func DecodeRequest(data []byte) (*PriceRequest, error) {
	var req PriceRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, err
	}
	if len(req.Options) == 0 {
		return nil, fmt.Errorf("request has no options")
	}
	if len(req.Options) > MaxRequestOptions {
		return nil, fmt.Errorf("request has %d options; max %d", len(req.Options), MaxRequestOptions)
	}
	method, err := ParseMethod(req.Method)
	if err != nil {
		return nil, err
	}
	if req.DeadlineMS < 0 {
		return nil, fmt.Errorf("negative deadline_ms %d", req.DeadlineMS)
	}
	if req.Config.BinomialSteps < 0 || req.Config.GridPoints < 0 ||
		req.Config.TimeSteps < 0 || req.Config.MCPaths < 0 {
		return nil, fmt.Errorf("negative config parameter")
	}
	for i := range req.Options {
		o := &req.Options[i]
		if err := validateWireOption(o); err != nil {
			return nil, fmt.Errorf("option %d: %w", i, err)
		}
		if o.Style == "american" && (method == finbench.ClosedForm || method == finbench.MonteCarlo) {
			return nil, fmt.Errorf("option %d: method %v is European-only", i, method)
		}
	}
	return &req, nil
}

func validateWireOption(o *WireOption) error {
	switch o.Type {
	case "", "call", "put":
	default:
		return fmt.Errorf("unknown option type %q", o.Type)
	}
	switch o.Style {
	case "", "european", "american":
	default:
		return fmt.Errorf("unknown exercise style %q", o.Style)
	}
	for _, v := range [3]float64{o.Spot, o.Strike, o.Expiry} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("non-finite parameter")
		}
	}
	if o.Spot <= 0 || o.Strike <= 0 || o.Expiry <= 0 {
		return fmt.Errorf("spot, strike and expiry must be positive")
	}
	return nil
}

// ToOption converts a validated wire option.
func (o *WireOption) ToOption() finbench.Option {
	var out finbench.Option
	out.Spot = o.Spot
	out.Strike = o.Strike
	out.Expiry = o.Expiry
	if o.Type == "put" {
		out.Type = finbench.Put
	}
	if o.Style == "american" {
		out.Style = finbench.American
	}
	return out
}

// ToConfig converts the wire config (zeros mean defaults, resolved by the
// library).
func (c WireConfig) ToConfig() finbench.Config {
	return finbench.Config{
		BinomialSteps: c.BinomialSteps,
		GridPoints:    c.GridPoints,
		TimeSteps:     c.TimeSteps,
		MCPaths:       c.MCPaths,
		Seed:          c.Seed,
	}
}

func wireFromConfig(c finbench.Config) WireConfig {
	return WireConfig{
		BinomialSteps: c.BinomialSteps,
		GridPoints:    c.GridPoints,
		TimeSteps:     c.TimeSteps,
		MCPaths:       c.MCPaths,
		Seed:          c.Seed,
	}
}
