// Package linalg provides the small dense linear algebra the Monte Carlo
// extensions need: Cholesky factorization (correlated multi-asset path
// generation) and symmetric-positive-definite solves (the least-squares
// regression of Longstaff-Schwartz). Matrices are row-major [][]float64;
// sizes here are tiny (basis functions, asset counts), so clarity beats
// blocking.
package linalg

import (
	"errors"
	"math"
)

// ErrNotSPD is returned when a matrix is not symmetric positive definite.
var ErrNotSPD = errors.New("linalg: matrix not symmetric positive definite")

// Cholesky returns the lower-triangular L with A = L L^T. A must be
// symmetric positive definite; A is not modified.
func Cholesky(a [][]float64) ([][]float64, error) {
	n := len(a)
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		if len(a[i]) != n {
			return nil, errors.New("linalg: matrix not square")
		}
		for j := 0; j <= i; j++ {
			sum := a[i][j]
			for k := 0; k < j; k++ {
				sum -= l[i][k] * l[j][k]
			}
			if i == j {
				if sum <= 0 {
					return nil, ErrNotSPD
				}
				l[i][i] = math.Sqrt(sum)
			} else {
				l[i][j] = sum / l[j][j]
			}
		}
	}
	return l, nil
}

// SolveSPD solves A x = b for symmetric positive definite A via Cholesky
// (forward + back substitution).
func SolveSPD(a [][]float64, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	n := len(b)
	// Forward: L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l[i][k] * y[k]
		}
		y[i] = s / l[i][i]
	}
	// Back: L^T x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l[k][i] * x[k]
		}
		x[i] = s / l[i][i]
	}
	return x, nil
}

// LeastSquares fits coefficients c minimizing ||X c - y||^2 by the normal
// equations (X^T X) c = X^T y, with a tiny ridge term for numerical safety
// when columns are nearly collinear. X is row-major (one row per
// observation).
func LeastSquares(x [][]float64, y []float64) ([]float64, error) {
	if len(x) == 0 {
		return nil, errors.New("linalg: empty design matrix")
	}
	p := len(x[0])
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p)
	}
	xty := make([]float64, p)
	for r, row := range x {
		if len(row) != p {
			return nil, errors.New("linalg: ragged design matrix")
		}
		for i := 0; i < p; i++ {
			for j := 0; j <= i; j++ {
				xtx[i][j] += row[i] * row[j]
			}
			xty[i] += row[i] * y[r]
		}
	}
	for i := 0; i < p; i++ {
		for j := i + 1; j < p; j++ {
			xtx[i][j] = xtx[j][i]
		}
		xtx[i][i] += 1e-10 * (1 + xtx[i][i]) // ridge
	}
	return SolveSPD(xtx, xty)
}

// MatVec returns A x.
func MatVec(a [][]float64, x []float64) []float64 {
	out := make([]float64, len(a))
	for i, row := range a {
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}
