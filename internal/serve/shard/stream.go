package shard

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"finbench/internal/serve/stream"
)

// Streaming fan-out: GET /stream on the router partitions the client's
// contract subscription across the routable replicas, relays each
// partition's upstream SSE stream, and re-multiplexes the frames onto the
// client connection. The frames' payload bytes are forwarded verbatim, so
// every Greeks value a routed subscriber sees is exactly what one replica
// pushed — the routed-bits-identical invariant extends to the feed.
//
// Robustness mirrors the request path:
//   - A dead replica ends its partition's upstream stream; the relay
//     re-subscribes the partition to a healthy replica (breaker-aware).
//     The fresh subscription's first snapshot IS the partition's resync —
//     the client state-replaces and no stale values survive.
//   - A replica's own drain goodbye is filtered out and treated as a
//     stream end (failover), never forwarded: the client's stream outlives
//     any one replica, and only the router's own shutdown says goodbye.
//   - Relays never block on the client: the merged channel is bounded and
//     sends are non-blocking. A client too slow to keep up overflows it
//     and is disconnected with a goodbye — shed, don't queue — so one
//     stalled subscriber cannot back-pressure the relays or the replicas.
const (
	// streamMergedBuffer bounds the per-client merged frame queue.
	streamMergedBuffer = 256
	// streamRetryDelay spaces re-subscription attempts when no replica is
	// routable or a subscription attempt fails outright.
	streamRetryDelay = 100 * time.Millisecond
)

// relayMsg is one upstream frame, classified by event name so the writer
// can rewrite hellos and count the rest.
type relayMsg struct {
	event string
	data  []byte
}

// routeStream serves one routed SSE subscription.
func (r *Router) routeStream(w http.ResponseWriter, req *http.Request) {
	r.streamRequests.Add(1)
	if req.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	q := req.URL.Query()
	ids, err := stream.ParseSubscription(q.Get("contracts"), q.Get("ids"), 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if ids == nil {
		// A replica resolves "everything" against its own universe; the
		// router cannot know any replica's universe, so it refuses rather
		// than guess.
		writeError(w, http.StatusBadRequest,
			"router /stream requires an explicit subscription (contracts= or ids=)")
		return
	}
	parts := r.partitionStream(ids)
	if len(parts) == 0 {
		r.noReplica.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "no routable replica")
		return
	}

	ctx, cancel := context.WithCancel(req.Context())
	merged := make(chan relayMsg, streamMergedBuffer)
	overflow := make(chan struct{}, 1)
	var wg sync.WaitGroup
	for _, part := range parts {
		wg.Add(1)
		go func(part string) {
			defer wg.Done()
			r.relayPartition(ctx, part, merged, overflow)
		}(part)
	}
	defer func() {
		// Relays never block on merged (sends are non-blocking), so the
		// cancel alone unsticks them; no draining needed before the join.
		cancel()
		wg.Wait()
	}()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	writeFrame := func(frame []byte) bool {
		if frame == nil {
			return true
		}
		if err := rc.SetWriteDeadline(time.Now().Add(r.cfg.StreamWriteTimeout)); err != nil {
			return false
		}
		if _, err := w.Write(frame); err != nil {
			return false
		}
		return rc.Flush() == nil
	}

	// Every relay's first message is its upstream's hello (per-channel
	// FIFO), so the first message dequeued here is always a hello: the
	// client sees hello first, rewritten to describe the whole
	// subscription. Later hellos (other partitions, failover
	// re-subscriptions) are dropped.
	helloSent := false
	for {
		select {
		case <-ctx.Done():
			// Client went away.
			return
		case <-r.stop:
			writeFrame(stream.MarshalFrame(stream.EventGoodbye,
				&stream.Goodbye{Reason: "draining"}))
			return
		case <-overflow:
			r.streamSlowDrops.Add(1)
			writeFrame(stream.MarshalFrame(stream.EventGoodbye,
				&stream.Goodbye{Reason: "slow client"}))
			return
		case m := <-merged:
			if m.event == stream.EventHello {
				if helloSent {
					continue
				}
				frame := stream.AppendFrame(nil, m.event, m.data)
				var hello stream.Hello
				if json.Unmarshal(m.data, &hello) == nil {
					hello.Subscribed = len(ids)
					frame = stream.MarshalFrame(stream.EventHello, &hello)
				}
				if !writeFrame(frame) {
					return
				}
				helloSent = true
				continue
			}
			if !writeFrame(stream.AppendFrame(nil, m.event, m.data)) {
				return
			}
		}
	}
}

// partitionStream splits a sorted id list into one contiguous range
// expression per routable replica (at most one partition per id) and
// counts the dispatch.
func (r *Router) partitionStream(ids []int) []string {
	n := 0
	for _, rep := range r.replicas {
		if rep.routable() {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	if n > len(ids) {
		n = len(ids)
	}
	chunk := (len(ids) + n - 1) / n
	parts := make([]string, 0, n)
	for lo := 0; lo < len(ids); lo += chunk {
		hi := lo + chunk
		if hi > len(ids) {
			hi = len(ids)
		}
		parts = append(parts, formatRanges(ids[lo:hi]))
	}
	r.streamPartitions.Add(uint64(len(parts)))
	return parts
}

// formatRanges compresses a sorted id list into the subscription
// grammar's range form ("0-63,80,128-191").
func formatRanges(ids []int) string {
	var b strings.Builder
	for i := 0; i < len(ids); {
		j := i
		for j+1 < len(ids) && ids[j+1] == ids[j]+1 {
			j++
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(ids[i]))
		if j > i {
			b.WriteByte('-')
			b.WriteString(strconv.Itoa(ids[j]))
		}
		i = j + 1
	}
	return b.String()
}

// relayPartition keeps one partition subscribed somewhere until the
// client or the router goes away: subscribe to the best replica, forward
// frames until that stream ends, then re-subscribe elsewhere. An
// established stream that ends counts as a resubscription (failover);
// an attempt that never established backs off briefly instead of
// hammering a dying fleet.
func (r *Router) relayPartition(ctx context.Context, contracts string, merged chan<- relayMsg, overflow chan<- struct{}) {
	var last *replica
	for {
		if ctx.Err() != nil {
			return
		}
		select {
		case <-r.stop:
			return
		default:
		}
		rep := r.pickStreamReplica(last)
		if rep == nil {
			if !sleepCtx(ctx, r.stop, streamRetryDelay) {
				return
			}
			continue
		}
		established := r.relayOnce(ctx, rep, contracts, merged, overflow)
		if ctx.Err() != nil {
			return
		}
		select {
		case <-r.stop:
			return
		default:
		}
		last = rep
		if established {
			r.streamResubscribes.Add(1)
		} else if !sleepCtx(ctx, r.stop, streamRetryDelay) {
			return
		}
	}
}

// pickStreamReplica chooses the least-loaded routable replica the breaker
// admits, preferring one other than `avoid` (the replica whose stream
// just ended) so a failover actually fails over — a lone replica is still
// acceptable on the second pass.
func (r *Router) pickStreamReplica(avoid *replica) *replica {
	for pass := 0; pass < 2; pass++ {
		var best *replica
		var bestScore int64
		for _, rep := range r.replicas {
			if !rep.routable() {
				continue
			}
			if pass == 0 && rep == avoid {
				continue
			}
			score := rep.inflight.Load()*1_000_000 + rep.loadUnits.Load()
			if best == nil || score < bestScore {
				best, bestScore = rep, score
			}
		}
		// finlint:ignore leakcheck the Allow admitted here is settled by relayOnce, which calls Success or Failure on every outcome of the subscription attempt
		if best != nil && best.breaker.Allow() {
			return best
		}
	}
	return nil
}

// relayOnce subscribes one partition to rep and forwards its frames until
// the upstream stream ends; it reports whether the stream was ever
// established (at least one frame forwarded). The breaker admission from
// pickStreamReplica is settled exactly once, on the subscription outcome:
// shedding (503/429) is load, not brokenness; transport failure and 5xx
// are failures; an established stream ending later is settled by the next
// pick, not double-counted here.
func (r *Router) relayOnce(ctx context.Context, rep *replica, contracts string, merged chan<- relayMsg, overflow chan<- struct{}) bool {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet,
		rep.url+"/stream?contracts="+contracts, nil)
	if err != nil {
		rep.breaker.Success() // request construction is not the replica's fault
		return false
	}
	rep.inflight.Add(1)
	defer rep.inflight.Add(-1)
	resp, err := r.client.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			rep.breaker.Success() // cancelled, not evidence against the replica
		} else {
			rep.breaker.Failure()
		}
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		if resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusTooManyRequests {
			rep.breaker.Success() // alive and shedding
		} else {
			rep.breaker.Failure()
		}
		return false
	}
	rep.breaker.Success()
	rep.served.Add(1)

	fr := stream.NewFrameReader(resp.Body)
	established := false
	for {
		f, err := fr.Next()
		if err != nil {
			return established
		}
		if f.Event == stream.EventGoodbye {
			// The replica is draining. Never forwarded: the relay finds a
			// healthy replica and that subscription's snapshot resyncs the
			// partition — only the router's own shutdown ends the client's
			// stream.
			return established
		}
		established = true
		select {
		case merged <- relayMsg{event: f.Event, data: f.Data}:
		default:
			// Slow client: shed the stream (the writer says goodbye and
			// disconnects) rather than queue. Relays never block.
			select {
			case overflow <- struct{}{}:
			default:
			}
		}
	}
}

// sleepCtx sleeps d unless ctx or stop ends first.
func sleepCtx(ctx context.Context, stop <-chan struct{}, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-stop:
		return false
	case <-t.C:
		return true
	}
}
