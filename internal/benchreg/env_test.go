package benchreg

import (
	"runtime"
	"strings"
	"testing"
)

// The fingerprint must be stable within a process: two captures are
// identical, so a snapshot's env reflects the run, not the call time.
func TestFingerprintStability(t *testing.T) {
	a, b := Fingerprint(), Fingerprint()
	if a != b {
		t.Fatalf("fingerprint not stable:\n%+v\n%+v", a, b)
	}
	if a.GoVersion != runtime.Version() {
		t.Errorf("GoVersion %q, want %q", a.GoVersion, runtime.Version())
	}
	if a.GOMAXPROCS <= 0 || a.NumCPU <= 0 {
		t.Errorf("non-positive CPU counts: %+v", a)
	}
	if a.GOOS == "" || a.GOARCH == "" {
		t.Errorf("empty platform fields: %+v", a)
	}
	if !a.Comparable(b) {
		t.Error("a fingerprint must be comparable with itself")
	}
}

func TestEnvString(t *testing.T) {
	e := Env{GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 4, CPUModel: "Some CPU"}
	s := e.String()
	for _, want := range []string{"go1.24.0", "linux/amd64", "Some CPU", "GOMAXPROCS=4"} {
		if !strings.Contains(s, want) {
			t.Errorf("Env.String() = %q missing %q", s, want)
		}
	}
}
