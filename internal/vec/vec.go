// Package vec is a software double-precision SIMD ISA.
//
// The paper's optimized kernels are written against the Intel C++ vector
// classes F64vec4 (256-bit AVX on SNB-EP) and F64vec8 (512-bit on KNC),
// which wrap intrinsics with infix-operator syntax so that "the resulting
// code appears practically identical to the scalar code" (Sec. III-B).
// This package is the Go equivalent: Vec is a vector register of up to 8
// doubles, and Ctx selects the active width (4 to model SNB-EP, 8 to model
// KNC) so that one kernel source serves both targets, exactly as the paper
// swaps F64vec4 for F64vec8 between platforms.
//
// Every operation optionally records itself into a perf.Counts, which is
// how kernel variants report the dynamic instruction mixes that
// internal/machine converts into modelled throughput. Counting is skipped
// when Ctx.C is nil, so the same kernels also run at full native speed for
// the wall-clock benchmarks.
//
// Vector arithmetic counts one operation per instruction (not per lane);
// transcendentals count per element, matching the per-element costs in the
// machine model.
package vec // finlint:hot — allocation-free loops enforced by internal/lint

import (
	"fmt"

	"finbench/internal/mathx"
	"finbench/internal/perf"
)

// MaxWidth is the largest supported vector width (KNC's 8 DP lanes).
const MaxWidth = 8

// Vec is one vector register. Lanes beyond the context width are
// dead — operations neither read nor write them, mirroring how 256-bit code
// ignores the upper half of a 512-bit register.
type Vec struct {
	X [MaxWidth]float64
}

// Mask is a per-lane predicate, one bit per lane (bit i = lane i), the
// software analogue of KNC's mask registers.
type Mask uint8

// Set reports whether lane i is active in the mask.
func (m Mask) Set(i int) bool { return m&(1<<uint(i)) != 0 }

// Ctx binds a vector width and an optional operation counter. The zero Ctx
// is invalid; use New.
type Ctx struct {
	// W is the active lane count (4 or 8).
	W int
	// C receives the dynamic operation mix; nil disables accounting.
	C *perf.Counts
}

// New returns a context of the given width (must be a power of two between
// 1 and MaxWidth) with optional counting.
func New(width int, c *perf.Counts) Ctx {
	if width < 1 || width > MaxWidth || width&(width-1) != 0 {
		panic(fmt.Sprintf("vec: invalid width %d", width))
	}
	if c != nil && c.Width == 0 {
		c.Width = width
	}
	return Ctx{W: width, C: c}
}

func (c Ctx) count(op perf.Op, n uint64) {
	if c.C != nil {
		c.C.Add(op, n)
	}
}

// Broadcast returns a vector with s in every lane (vbroadcastsd).
func (c Ctx) Broadcast(s float64) Vec {
	c.count(perf.OpVecMisc, 1)
	var v Vec
	for i := 0; i < c.W; i++ {
		v.X[i] = s
	}
	return v
}

// Zero returns the zero vector (vxorpd, counted as a misc op).
func (c Ctx) Zero() Vec {
	c.count(perf.OpVecMisc, 1)
	return Vec{}
}

// Iota returns {base, base+step, base+2*step, ...} (compile-time constant
// vectors in real SIMD code; counted as a misc op).
func (c Ctx) Iota(base, step float64) Vec {
	c.count(perf.OpVecMisc, 1)
	var v Vec
	for i := 0; i < c.W; i++ {
		v.X[i] = base + float64(i)*step
	}
	return v
}

// Move returns a copy of a, counted as a register move. The paper's
// binomial tiling discussion (Sec. IV-B3) notes that unrolling "eliminates
// the register move", which matters on in-order KNC; kernels use Move
// exactly where the non-unrolled code would need one.
func (c Ctx) Move(a Vec) Vec {
	c.count(perf.OpVecMisc, 1)
	return a
}

// Load loads c.W elements from s starting at off, which the caller
// guarantees is vector-aligned (vmovapd).
func (c Ctx) Load(s []float64, off int) Vec {
	c.count(perf.OpVecLoad, 1)
	var v Vec
	copy(v.X[:c.W], s[off:off+c.W])
	return v
}

// LoadU is an unaligned vector load (vmovupd / vloadunpackld+hd on KNC).
// The reference binomial kernel's Call[j+1] access is the paper's example.
func (c Ctx) LoadU(s []float64, off int) Vec {
	c.count(perf.OpVecLoadU, 1)
	var v Vec
	copy(v.X[:c.W], s[off:off+c.W])
	return v
}

// Store writes c.W lanes to s at aligned offset off.
func (c Ctx) Store(s []float64, off int, v Vec) {
	c.count(perf.OpVecStore, 1)
	copy(s[off:off+c.W], v.X[:c.W])
}

// GatherStride loads lanes from s[base], s[base+stride], ... — the
// AOS access pattern whose cost dominates the reference Black-Scholes on
// KNC (Sec. IV-A3: data "spread across as many as vector length
// cachelines").
func (c Ctx) GatherStride(s []float64, base, stride int) Vec {
	c.count(strideGatherOp(c.W, stride, perf.OpGather, perf.OpGatherNear), 1)
	var v Vec
	for i := 0; i < c.W; i++ {
		v.X[i] = s[base+i*stride]
	}
	return v
}

// ScatterStride stores lanes to s[base], s[base+stride], ....
func (c Ctx) ScatterStride(s []float64, base, stride int, v Vec) {
	c.count(strideGatherOp(c.W, stride, perf.OpScatter, perf.OpScatterNear), 1)
	for i := 0; i < c.W; i++ {
		s[base+i*stride] = v.X[i]
	}
}

// strideGatherOp classifies a strided access: unit-or-double strides keep
// every lane inside at most two cache lines that stay L1-resident across
// consecutive accesses (the GSOR wavefront's stride -2 walk), costing
// little even on in-order cores. Wider strides — above all the
// record-stride AOS pattern — touch a fresh line per lane-group and are
// charged the full streaming-gather cost.
func strideGatherOp(w, stride int, far, near perf.Op) perf.Op {
	span := stride
	if span < 0 {
		span = -span
	}
	if w == 1 || (span <= 2 && span*(w-1) < 16) {
		return near // single-lane access degenerates to a scalar load
	}
	return far
}

// GatherIdx loads lanes from s[idx[i]] (full gather with an index vector).
func (c Ctx) GatherIdx(s []float64, idx []int) Vec {
	c.count(perf.OpGather, 1)
	var v Vec
	for i := 0; i < c.W; i++ {
		v.X[i] = s[idx[i]]
	}
	return v
}

// Add returns a+b lane-wise.
func (c Ctx) Add(a, b Vec) Vec {
	c.count(perf.OpVecAdd, 1)
	var v Vec
	for i := 0; i < c.W; i++ {
		v.X[i] = a.X[i] + b.X[i]
	}
	return v
}

// Sub returns a-b lane-wise.
func (c Ctx) Sub(a, b Vec) Vec {
	c.count(perf.OpVecAdd, 1)
	var v Vec
	for i := 0; i < c.W; i++ {
		v.X[i] = a.X[i] - b.X[i]
	}
	return v
}

// Mul returns a*b lane-wise.
func (c Ctx) Mul(a, b Vec) Vec {
	c.count(perf.OpVecMul, 1)
	var v Vec
	for i := 0; i < c.W; i++ {
		v.X[i] = a.X[i] * b.X[i]
	}
	return v
}

// Div returns a/b lane-wise.
func (c Ctx) Div(a, b Vec) Vec {
	c.count(perf.OpVecDiv, 1)
	var v Vec
	for i := 0; i < c.W; i++ {
		v.X[i] = a.X[i] / b.X[i]
	}
	return v
}

// FMA returns a*b+acc lane-wise, one instruction on KNC, a mul+add pair on
// SNB-EP (the machine model charges it accordingly).
func (c Ctx) FMA(a, b, acc Vec) Vec {
	c.count(perf.OpVecFMA, 1)
	var v Vec
	for i := 0; i < c.W; i++ {
		v.X[i] = a.X[i]*b.X[i] + acc.X[i]
	}
	return v
}

// Max returns the lane-wise maximum.
func (c Ctx) Max(a, b Vec) Vec {
	c.count(perf.OpVecMax, 1)
	var v Vec
	for i := 0; i < c.W; i++ {
		if a.X[i] > b.X[i] {
			v.X[i] = a.X[i]
		} else {
			v.X[i] = b.X[i]
		}
	}
	return v
}

// Min returns the lane-wise minimum.
func (c Ctx) Min(a, b Vec) Vec {
	c.count(perf.OpVecMax, 1)
	var v Vec
	for i := 0; i < c.W; i++ {
		if a.X[i] < b.X[i] {
			v.X[i] = a.X[i]
		} else {
			v.X[i] = b.X[i]
		}
	}
	return v
}

// Neg returns -a.
func (c Ctx) Neg(a Vec) Vec {
	c.count(perf.OpVecMisc, 1)
	var v Vec
	for i := 0; i < c.W; i++ {
		v.X[i] = -a.X[i]
	}
	return v
}

// CmpGT returns a mask with bit i set where a[i] > b[i].
func (c Ctx) CmpGT(a, b Vec) Mask {
	c.count(perf.OpVecMax, 1)
	var m Mask
	for i := 0; i < c.W; i++ {
		if a.X[i] > b.X[i] {
			m |= 1 << uint(i)
		}
	}
	return m
}

// Blend returns a vector selecting a[i] where m is set, else b[i]
// (vblendvpd / masked move).
func (c Ctx) Blend(m Mask, a, b Vec) Vec {
	c.count(perf.OpVecMax, 1)
	var v Vec
	for i := 0; i < c.W; i++ {
		if m.Set(i) {
			v.X[i] = a.X[i]
		} else {
			v.X[i] = b.X[i]
		}
	}
	return v
}

// ReduceAdd returns the sum of the active lanes (log2(W) shuffle+add
// pairs, counted as such).
func (c Ctx) ReduceAdd(a Vec) float64 {
	n := uint64(0)
	for w := c.W; w > 1; w >>= 1 {
		n++
	}
	c.count(perf.OpVecMisc, n)
	c.count(perf.OpVecAdd, n)
	var s float64
	for i := 0; i < c.W; i++ {
		s += a.X[i]
	}
	return s
}

// ReduceMax returns the maximum over the active lanes.
func (c Ctx) ReduceMax(a Vec) float64 {
	n := uint64(0)
	for w := c.W; w > 1; w >>= 1 {
		n++
	}
	c.count(perf.OpVecMisc, n)
	c.count(perf.OpVecMax, n)
	s := a.X[0]
	for i := 1; i < c.W; i++ {
		if a.X[i] > s {
			s = a.X[i]
		}
	}
	return s
}

// Exp applies e**x to each lane (SVML-style vector transcendental;
// counted per element).
func (c Ctx) Exp(a Vec) Vec {
	c.count(perf.OpExp, uint64(c.W))
	var v Vec
	for i := 0; i < c.W; i++ {
		v.X[i] = mathx.Exp(a.X[i])
	}
	return v
}

// Log applies the natural logarithm to each lane.
func (c Ctx) Log(a Vec) Vec {
	c.count(perf.OpLog, uint64(c.W))
	var v Vec
	for i := 0; i < c.W; i++ {
		v.X[i] = mathx.Log(a.X[i])
	}
	return v
}

// Sqrt applies the square root to each lane.
func (c Ctx) Sqrt(a Vec) Vec {
	c.count(perf.OpSqrt, uint64(c.W))
	var v Vec
	for i := 0; i < c.W; i++ {
		v.X[i] = mathx.Sqrt(a.X[i])
	}
	return v
}

// Erf applies the error function to each lane (the SVML erf of the
// optimized Black-Scholes).
func (c Ctx) Erf(a Vec) Vec {
	c.count(perf.OpErf, uint64(c.W))
	var v Vec
	for i := 0; i < c.W; i++ {
		v.X[i] = mathx.Erf(a.X[i])
	}
	return v
}

// CND applies the cumulative normal distribution to each lane (the
// reference Black-Scholes cnd()).
func (c Ctx) CND(a Vec) Vec {
	c.count(perf.OpCND, uint64(c.W))
	var v Vec
	for i := 0; i < c.W; i++ {
		v.X[i] = mathx.CND(a.X[i])
	}
	return v
}

// InvCND applies the inverse cumulative normal distribution to each lane
// (the ICDF transform of the normal RNG).
func (c Ctx) InvCND(a Vec) Vec {
	c.count(perf.OpInvCND, uint64(c.W))
	var v Vec
	for i := 0; i < c.W; i++ {
		v.X[i] = mathx.InvCND(a.X[i])
	}
	return v
}

// LoadRev loads c.W consecutive elements starting at off and reverses
// them: lane i receives s[off+W-1-i]. One aligned load plus a lane-reversal
// shuffle — the access pattern of the reordered (even/odd split) GSOR
// arrays in the Crank-Nicolson kernel, where the wavefront walks the
// arrays backwards.
func (c Ctx) LoadRev(s []float64, off int) Vec {
	c.count(perf.OpVecLoad, 1)
	c.count(perf.OpVecMisc, 1)
	var v Vec
	for i := 0; i < c.W; i++ {
		v.X[i] = s[off+c.W-1-i]
	}
	return v
}

// StoreRev reverses lanes and stores them to s[off:off+W]: the write-back
// counterpart of LoadRev.
func (c Ctx) StoreRev(s []float64, off int, v Vec) {
	c.count(perf.OpVecStore, 1)
	c.count(perf.OpVecMisc, 1)
	for i := 0; i < c.W; i++ {
		s[off+c.W-1-i] = v.X[i]
	}
}
