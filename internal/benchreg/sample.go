package benchreg

import (
	"runtime"
	"sort"
	"time"
)

// Opts configures the repetition harness.
type Opts struct {
	// Warmup is the number of untimed calls before sampling begins (page
	// faults, cache fill, branch-predictor training).
	Warmup int `json:"warmup"`
	// Reps is the number of timed repetitions; the reported median and MAD
	// are taken across them.
	Reps int `json:"reps"`
	// MinDuration is the minimum wall time per repetition: within one
	// repetition the kernel is called back-to-back until at least this
	// much time has elapsed, and the repetition's sample is the mean time
	// per call. This amortizes timer granularity for sub-millisecond
	// kernels exactly as the old single-shot timeIt did.
	MinDuration time.Duration `json:"min_duration_ns"`
}

// DefaultOpts is the full-fidelity preset used by interactive measure
// runs and `benchreg run` without -short.
func DefaultOpts() Opts {
	return Opts{Warmup: 1, Reps: 7, MinDuration: 100 * time.Millisecond}
}

// ShortOpts is the fast preset for CI gates and local iteration: fewer,
// shorter repetitions. Noise-aware checking compensates for the larger
// per-sample jitter via the recorded MAD.
func ShortOpts() Opts {
	return Opts{Warmup: 1, Reps: 5, MinDuration: 20 * time.Millisecond}
}

// withDefaults fills zero fields so a partially-specified Opts behaves.
func (o Opts) withDefaults() Opts {
	d := DefaultOpts()
	if o.Warmup < 0 {
		o.Warmup = 0
	}
	if o.Reps <= 0 {
		o.Reps = d.Reps
	}
	if o.MinDuration <= 0 {
		o.MinDuration = d.MinDuration
	}
	return o
}

// Sample is the statistical summary of one kernel's timed repetitions.
type Sample struct {
	// Items is the work-item count per kernel invocation.
	Items int
	// Reps is the number of timed repetitions taken.
	Reps int
	// MedianSec and MADSec summarize the per-invocation wall time.
	MedianSec float64
	MADSec    float64
	// OpsPerSec and OpsMAD summarize throughput (Items/MedianSec is not
	// used; throughput is computed per repetition and summarized directly
	// so its MAD is a genuine spread, not a first-order propagation).
	OpsPerSec float64
	OpsMAD    float64
	// AllocsPerOp is the median heap allocations per kernel invocation
	// (one f() call), counted via the runtime's cumulative Mallocs
	// counter around each repetition's run loop. Unlike wall time it is
	// machine-independent: the same binary on the same inputs allocates
	// the same number of objects on a laptop and a loaded CI runner,
	// which makes it the one gated quantity that needs no noise band.
	AllocsPerOp float64
	// Throughputs holds the raw per-repetition throughput samples (not
	// serialized; used by tests and ad-hoc analysis).
	Throughputs []float64
}

// Measure times f, which processes items work units per call, under the
// given options and returns the median±MAD summary. It is the repo's one
// timing method: internal/bench.timeIt and `benchreg run` both route
// through it.
func Measure(items int, f func(), o Opts) Sample {
	o = o.withDefaults()
	for i := 0; i < o.Warmup; i++ {
		f()
	}
	secs := make([]float64, 0, o.Reps)
	ops := make([]float64, 0, o.Reps)
	allocs := make([]float64, 0, o.Reps)
	var ms runtime.MemStats
	for r := 0; r < o.Reps; r++ {
		var elapsed time.Duration
		runs := 0
		// Mallocs is a cumulative monotonic counter, so the delta across
		// the repetition counts exactly the allocations of its runs (GC
		// cannot decrease it). Both reads sit outside the timed windows.
		runtime.ReadMemStats(&ms)
		mallocsBefore := ms.Mallocs
		for elapsed < o.MinDuration {
			start := time.Now()
			f()
			elapsed += time.Since(start)
			runs++
		}
		runtime.ReadMemStats(&ms)
		per := elapsed.Seconds() / float64(runs)
		secs = append(secs, per)
		ops = append(ops, float64(items)/per)
		allocs = append(allocs, float64(ms.Mallocs-mallocsBefore)/float64(runs))
	}
	return Sample{
		Items:       items,
		Reps:        o.Reps,
		MedianSec:   Median(secs),
		MADSec:      MAD(secs),
		OpsPerSec:   Median(ops),
		OpsMAD:      MAD(ops),
		AllocsPerOp: Median(allocs),
		Throughputs: ops,
	}
}

// calibSink defeats dead-code elimination of the calibration loop.
var calibSink float64

// Calibrate times a fixed, memory-free ALU/FPU kernel (xorshift mixing
// feeding a float accumulator) under the given options and returns its
// throughput in iterations/sec. The kernel's working set is three
// registers, so its speed is a clean proxy for the machine's effective
// CPU speed at measurement time — unaffected by cache aliasing, heap
// layout, or allocator state. Snapshots record it so two runs can be
// compared net of uniform machine-speed drift. (A code change cannot
// speed it up or slow it down except through the toolchain itself; a
// toolchain regression uniform enough to slow this loop equally with
// every kernel is the one case normalization masks, which is why check
// also prints the raw factor.)
func Calibrate(o Opts) float64 {
	const iters = 1 << 20
	s := Measure(iters, func() {
		x := uint64(0x9E3779B97F4A7C15)
		acc := 0.0
		for i := 0; i < iters; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			acc += float64(x>>40) * 1e-9
		}
		calibSink = acc
	}, o)
	return s.OpsPerSec
}

// Median returns the median of xs (mean of the middle pair for even
// lengths); 0 for an empty slice. xs is not modified.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := make([]float64, n)
	copy(s, xs)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MAD returns the median absolute deviation from the median, the robust
// dispersion estimate used by the regression gate. Unlike the standard
// deviation it is unmoved by a single scheduler-induced outlier rep.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		d := x - m
		if d < 0 {
			d = -d
		}
		dev[i] = d
	}
	return Median(dev)
}
