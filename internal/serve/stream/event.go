package stream

import "encoding/json"

// SSE event names. A stream opens with hello, then carries snapshot and
// greeks events; goodbye announces a server-initiated close (drain).
const (
	EventHello    = "hello"
	EventSnapshot = "snapshot"
	EventGreeks   = "greeks"
	EventGoodbye  = "goodbye"
)

// Entry is one contract's state in a snapshot or greeks event. It echoes
// the exact inputs the values were computed from (spot/vol/rate at the
// contract's last repricing) so every entry is self-verifying: a cold
// one-option LevelAdvanced repricing plus scalar greeks at the echoed
// inputs must reproduce every float bit-for-bit (the composition
// independence the serving tier pins).
type Entry struct {
	ID     int     `json:"id"`
	Type   string  `json:"type"` // "call" or "put"
	Strike float64 `json:"strike"`
	Expiry float64 `json:"expiry"`
	Spot   float64 `json:"spot"`
	Vol    float64 `json:"vol"`
	Rate   float64 `json:"rate"`
	Price  float64 `json:"price"`
	Delta  float64 `json:"delta"`
	Gamma  float64 `json:"gamma"`
	Vega   float64 `json:"vega"`
	Theta  float64 `json:"theta"`
	Rho    float64 `json:"rho"`
}

// Event is the payload of snapshot and greeks events. Seq and TickNS
// identify the tick of the latest repricing pass (TickNS is the tick's
// wall clock — subscribers measure tick→push staleness from it).
// Degraded marks a pass that covered only part of its dirty set (budget
// blown or worst-movers cap applied); Resync marks a snapshot forced by
// subscriber-buffer overflow or failover, as opposed to the subscription's
// initial snapshot.
type Event struct {
	Seq       uint64  `json:"seq"`
	TickNS    int64   `json:"tick_ns"`
	Degraded  bool    `json:"degraded,omitempty"`
	Resync    bool    `json:"resync,omitempty"`
	Contracts []Entry `json:"contracts"`
}

// Hello is the stream's opening event: everything a client needs to
// regenerate the universe and interpret the feed.
type Hello struct {
	Universe    int     `json:"universe"`
	Underlyings int     `json:"underlyings"`
	Seed        uint64  `json:"seed"`
	IntervalMS  int64   `json:"interval_ms"`
	SpotThresh  float64 `json:"spot_threshold"`
	Subscribed  int     `json:"subscribed"`
}

// Goodbye is the final event of a server-initiated close.
type Goodbye struct {
	Reason string `json:"reason"`
}

// AppendFrame appends one SSE frame ("event: <name>\ndata: <json>\n\n")
// to dst. Payloads are single-line JSON, so one data line suffices.
func AppendFrame(dst []byte, event string, data []byte) []byte {
	dst = append(dst, "event: "...)
	dst = append(dst, event...)
	dst = append(dst, "\ndata: "...)
	dst = append(dst, data...)
	dst = append(dst, '\n', '\n')
	return dst
}

// MarshalFrame builds a complete SSE frame for v, or nil if v does not
// marshal (never the case for the event types above).
func MarshalFrame(event string, v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		return nil
	}
	return AppendFrame(nil, event, data)
}
