// Exotics: price the derivative types that motivate the paper's Monte
// Carlo machinery — an arithmetic Asian call (plain MC vs bridge+Sobol
// quasi-MC), an American put by three independent methods, and a
// correlated three-asset basket.
//
//	go run ./examples/exotics
package main

import (
	"fmt"
	"log"

	"finbench"
)

func main() {
	mkt := finbench.Market{Rate: 0.03, Volatility: 0.25}

	// 1. Asian call: QMC needs ~16x fewer paths than MC for the same error.
	asian := finbench.AsianCall{Spot: 100, Strike: 100, Expiry: 1, Observations: 32}
	fmt.Println("Arithmetic Asian call (S=K=100, T=1, 32 observations):")
	mc, err := finbench.PriceAsianMC(asian, mkt, 1<<16, 7)
	check(err)
	fmt.Printf("  Monte Carlo (65536 paths):   %.4f  +- %.4f\n", mc.Price, mc.StdErr)
	qmc, err := finbench.PriceAsianQMC(asian, mkt, 1<<12, 7)
	check(err)
	fmt.Printf("  Sobol+bridge QMC (4096 pts): %.4f  +- %.4f\n\n", qmc.Price, qmc.StdErr)

	// 2. American put: lattice, PDE and regression Monte Carlo must agree.
	amer := finbench.Option{Type: finbench.Put, Style: finbench.American,
		Spot: 100, Strike: 110, Expiry: 1}
	fmt.Println("American put (S=100, K=110, T=1) by three methods:")
	bin, err := finbench.Price(amer, mkt, finbench.BinomialTree, nil)
	check(err)
	fmt.Printf("  binomial tree:      %.4f\n", bin.Price)
	fd, err := finbench.Price(amer, mkt, finbench.FiniteDifference, nil)
	check(err)
	fmt.Printf("  Crank-Nicolson:     %.4f\n", fd.Price)
	lsmc, err := finbench.PriceAmericanPutLSMC(amer, mkt, 100000, 50, 7)
	check(err)
	fmt.Printf("  Longstaff-Schwartz: %.4f  +- %.4f\n", lsmc.Price, lsmc.StdErr)
	delta, gamma, err := finbench.AmericanGreeks(amer, mkt, 1024)
	check(err)
	fmt.Printf("  lattice greeks:     delta %.4f  gamma %.4f\n\n", delta, gamma)

	// 3. Basket: diversification cheapens the option as correlation falls.
	fmt.Println("Equal-weight 3-asset basket call (K=100, T=1) vs correlation:")
	for _, rho := range []float64{0.0, 0.5, 0.9} {
		b := finbench.BasketCall{
			Spots:   []float64{100, 100, 100},
			Vols:    []float64{0.25, 0.25, 0.25},
			Weights: []float64{1.0 / 3, 1.0 / 3, 1.0 / 3},
			Corr: [][]float64{
				{1, rho, rho},
				{rho, 1, rho},
				{rho, rho, 1},
			},
			Strike: 100, Expiry: 1,
		}
		res, err := finbench.PriceBasketMC(b, mkt, 1<<16, 11)
		check(err)
		fmt.Printf("  rho=%.1f: %.4f  +- %.4f\n", rho, res.Price, res.StdErr)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
