// Command finbench regenerates the paper's tables and figures.
//
// Usage:
//
//	finbench list
//	finbench run [-experiment all|tab1|fig4|fig5|fig6|tab2|fig8|ninja]
//	             [-mode model|measure] [-scale 0.1] [-format table|csv]
//
// Model mode runs the instrumented kernels and prints the modelled SNB-EP
// and KNC throughput next to the paper's values; measure mode wall-clock
// times the kernels on the host.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"finbench"
	"finbench/internal/bench"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		list()
	case "run":
		run(os.Args[2:])
	case "report":
		report(os.Args[2:])
	case "roofline":
		roofline(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "finbench: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  finbench list
  finbench run    [-experiment id|all] [-mode model|measure] [-scale f] [-format table|csv]
  finbench report [-o report.md] [-scale f] [-measure]
  finbench roofline [-machine SNB-EP|KNC]`)
}

// roofline plots the modelled Black-Scholes optimization levels on the
// named machine's roofline.
func roofline(args []string) {
	fs := flag.NewFlagSet("roofline", flag.ExitOnError)
	machineName := fs.String("machine", "", "SNB-EP, KNC, or empty for both")
	_ = fs.Parse(args) // ExitOnError: Parse exits the process on bad flags

	const n = 50000
	b := finbench.NewBatch(n)
	for i := 0; i < n; i++ {
		b.Spots[i] = 50 + float64(i%150)
		b.Strikes[i] = 50 + float64((i*13)%150)
		b.Expiries[i] = 0.1 + float64(i%40)/8
	}
	mkt := finbench.Market{Rate: 0.02, Volatility: 0.3}
	for _, m := range finbench.Machines() {
		if *machineName != "" && !strings.EqualFold(m.Name, *machineName) {
			continue
		}
		points := map[string][2]float64{}
		for _, level := range []finbench.OptLevel{
			finbench.LevelBasic, finbench.LevelIntermediate, finbench.LevelAdvanced,
		} {
			mix, err := finbench.ProfileBatch(b, mkt, level, m.SIMDWidthDP)
			if err != nil {
				fmt.Fprintf(os.Stderr, "finbench: %v\n", err)
				os.Exit(1)
			}
			pred, err := finbench.PredictThroughput(mix, m.Name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "finbench: %v\n", err)
				os.Exit(1)
			}
			points["black-scholes "+level.String()] = [2]float64{mix.ArithmeticIntensity(), pred.GFLOPs}
		}
		chart, err := finbench.Roofline(m.Name, points)
		if err != nil {
			fmt.Fprintf(os.Stderr, "finbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(chart)
	}
}

// report writes a single markdown document containing every experiment's
// model table (and, with -measure, the host wall-clock tables).
func report(args []string) {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	out := fs.String("o", "report.md", "output file ('-' for stdout)")
	scale := fs.Float64("scale", 1.0, "workload scale in (0,1]")
	measure := fs.Bool("measure", false, "include host wall-clock tables")
	_ = fs.Parse(args) // ExitOnError: Parse exits the process on bad flags

	var b strings.Builder
	fmt.Fprintf(&b, "# finbench report\n\nWorkload scale %.2f. Model columns are predicted SNB-EP/KNC\nthroughput from measured operation mixes; see EXPERIMENTS.md for\nprovenance of the paper columns.\n\n", *scale)
	for _, e := range bench.Experiments() {
		if e.Model == nil {
			// Host-only experiments (servepath) have no paper column to
			// model; their numbers live in benchreg snapshots.
			continue
		}
		res, err := e.Model(*scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "finbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Fprintf(&b, "## %s — %s\n\n%s\n```\n%s```\n\n", e.ID, e.Title, e.Description, res.Table())
		if *measure && e.Measure != nil {
			mres, err := e.Measure(*scale)
			if err != nil {
				fmt.Fprintf(os.Stderr, "finbench: %s measure: %v\n", e.ID, err)
				os.Exit(1)
			}
			fmt.Fprintf(&b, "Host wall-clock:\n\n```\n%s```\n\n", mres.Table())
		}
	}
	if *out == "-" {
		fmt.Print(b.String())
		return
	}
	if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "finbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d bytes)\n", *out, b.Len())
}

func list() {
	fmt.Printf("%-8s %-55s %s\n", "ID", "TITLE", "MEASURABLE")
	for _, e := range bench.Experiments() {
		var modes []string
		if e.Model != nil {
			modes = append(modes, "model")
		}
		if e.Measure != nil {
			modes = append(modes, "measure")
		}
		fmt.Printf("%-8s %-55s %s\n", e.ID, e.Title, strings.Join(modes, "+"))
	}
}

func run(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	expID := fs.String("experiment", "all", "experiment id or 'all'")
	mode := fs.String("mode", "model", "model or measure")
	scale := fs.Float64("scale", 1.0, "workload scale in (0,1]")
	format := fs.String("format", "table", "table or csv")
	_ = fs.Parse(args) // ExitOnError: Parse exits the process on bad flags

	var exps []*bench.Experiment
	if *expID == "all" {
		exps = bench.Experiments()
	} else {
		e := bench.ByID(*expID)
		if e == nil {
			fmt.Fprintf(os.Stderr, "finbench: unknown experiment %q (try 'finbench list')\n", *expID)
			os.Exit(2)
		}
		exps = []*bench.Experiment{e}
	}

	for _, e := range exps {
		runner := e.Model
		if strings.HasPrefix(*mode, "measure") {
			if e.Measure == nil {
				fmt.Printf("%s: no measure mode (model-only experiment)\n\n", e.ID)
				continue
			}
			runner = e.Measure
		} else if runner == nil {
			fmt.Printf("%s: no model mode (host-only experiment; use -mode measure)\n\n", e.ID)
			continue
		}
		res, err := runner(*scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "finbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *format == "csv" {
			fmt.Printf("# %s — %s\n%s\n", res.ID, res.Title, res.CSV())
		} else {
			fmt.Println(res.Table())
		}
	}
}
