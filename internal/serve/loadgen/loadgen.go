// Package loadgen drives a finserve instance with a configurable request
// mix and verifies the protocol's guarantees from the outside: every 200
// must bit-match the library when recomputed from the effective
// method/config the response reports, overload must answer with 503/429
// (never another 5xx), and cancelled work must stop reaching the parallel
// pool (the scheduler counters in /statsz freeze). The e2e smoke gate is
// this package plus a shell script; all assertions live here so the
// script needs no JSON tooling.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"finbench"
	"finbench/internal/serve"
	"finbench/internal/serve/pricecache"
	"finbench/internal/serve/shard"
	"finbench/internal/serve/wire"
)

// Options configures a load-generation run.
type Options struct {
	// BaseURL is the server root, e.g. http://127.0.0.1:8123.
	BaseURL string
	// Concurrency is the number of client workers (default 4).
	Concurrency int
	// Requests is the total request budget across workers (default 64).
	Requests int
	// Mix maps wire method names (plus "greeks") to integer weights.
	// Empty means closed-form only.
	Mix map[string]int
	// OptionsPerRequest is the batch size of each request (default 8).
	OptionsPerRequest int
	// DeadlineMS is sent as deadline_ms when > 0.
	DeadlineMS int64
	// Config overrides the numeric parameters sent with each request.
	Config serve.WireConfig
	// Verify recomputes every 200 response against the library and counts
	// mismatches.
	Verify bool
	// Seed makes the generated option stream reproducible (default 1).
	Seed int64
	// Timeout bounds each HTTP request (default 60s).
	Timeout time.Duration

	// ZipfPool enables the Zipf contract-mix mode: instead of drawing
	// fresh contracts per request, each pricing request re-sends one of
	// ZipfPool pre-generated batches, chosen by a Zipf(s = ZipfS) rank
	// distribution — rank r drawn with weight 1/(r+1)^s. The pool is
	// seed-deterministic, so repeated runs replay the same hot set.
	// ZipfS 0 is uniform over the pool; realistic request skew is
	// s ≈ 1.0–1.3. Whole batches repeat (not just single contracts)
	// because a response cache is keyed by the full batch digest.
	// Greeks requests are unaffected.
	ZipfPool int
	ZipfS    float64

	// Scenario switches the run to POST /scenario: every request prices a
	// portfolio of OptionsPerRequest positions across a ScenarioGrid
	// (spot x vol x rate shock counts, default 5x3x3) plus, when
	// ScenarioGens > 0, one Heston, one jump and one basket generator of
	// that many scenarios each. With Verify set, every 200 body must be
	// byte-identical to the library's own evaluate+finalize — the
	// scatter-gather reproducibility gate. Mix/Wire/ZipfPool are ignored
	// in this mode.
	Scenario     bool
	ScenarioGrid [3]int
	ScenarioGens int

	// Wire selects the /price request framing for closed-form batches:
	// "json" (or empty) sends the AOS JSON body, "columnar" sends the
	// binary columnar frame. Columnar is closed-form-only, so other mix
	// methods (and greeks) always stay on JSON. With Verify set, every
	// columnar 200 is additionally replayed as a JSON request and the two
	// responses must be bit-identical — the cross-framing guarantee,
	// checked through whatever stack BaseURL points at (replica or
	// router).
	Wire string
}

// Report is the outcome of a run.
type Report struct {
	Requests  int            `json:"requests"`
	Codes     map[int]int    `json:"codes"`
	Errors    map[string]int `json:"errors,omitempty"`
	Verified  int            `json:"verified"`
	Mismatch  int            `json:"mismatch"`
	Coalesced int            `json:"coalesced"`
	Degraded  int            `json:"degraded"`
	// Columnar counts 200s answered over the binary columnar framing.
	Columnar int `json:"columnar,omitempty"`
	// Scattered counts scenario 200s the router split across replicas
	// (X-Finserve-Partitions > 1); zero against a bare replica.
	Scattered int `json:"scattered,omitempty"`
	// Retries and HedgeWins are read from the router's X-Finserve-*
	// response headers (zero against a bare replica): retries is the sum
	// of attempts beyond the first across all answered requests.
	Retries   int   `json:"retries"`
	HedgeWins int   `json:"hedge_wins"`
	ElapsedMS int64 `json:"elapsed_ms"`
	// P50MS / P99MS are per-request wall-clock latency percentiles over
	// every request, including errored ones (a refused connection is an
	// answer the client waited for).
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
	// Cache outcome counts observed from the X-Finserve-Cache response
	// header (absent against a cache-disabled server): hits served from
	// the store, misses computed as singleflight leaders, collapsed
	// requests served from a concurrent leader's computation, and
	// bypasses (requests the cache tier declined to consider).
	CacheHits      int `json:"cache_hits,omitempty"`
	CacheMisses    int `json:"cache_misses,omitempty"`
	CacheCollapsed int `json:"cache_collapsed,omitempty"`
	CacheBypass    int `json:"cache_bypass,omitempty"`
}

// HitRate is the fraction of cache-considered requests that avoided a
// computation (hit or collapsed); 0 when the cache saw nothing.
func (r *Report) HitRate() float64 {
	considered := r.CacheHits + r.CacheMisses + r.CacheCollapsed
	if considered == 0 {
		return 0
	}
	return float64(r.CacheHits+r.CacheCollapsed) / float64(considered)
}

// Availability is the fraction of requests answered 200, counting
// transport errors in the denominator.
func (r *Report) Availability() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Count(200)) / float64(r.Requests)
}

// Count returns the number of responses with the given status code.
func (r *Report) Count(code int) int { return r.Codes[code] }

// String renders the report for logs.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests=%d elapsed=%dms", r.Requests, r.ElapsedMS)
	codes := make([]int, 0, len(r.Codes))
	for c := range r.Codes {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Fprintf(&b, " %d=%d", c, r.Codes[c])
	}
	if r.Verified > 0 || r.Mismatch > 0 {
		fmt.Fprintf(&b, " verified=%d mismatch=%d", r.Verified, r.Mismatch)
	}
	if r.Coalesced > 0 {
		fmt.Fprintf(&b, " coalesced=%d", r.Coalesced)
	}
	if r.Degraded > 0 {
		fmt.Fprintf(&b, " degraded=%d", r.Degraded)
	}
	if r.Columnar > 0 {
		fmt.Fprintf(&b, " columnar=%d", r.Columnar)
	}
	if r.Scattered > 0 {
		fmt.Fprintf(&b, " scattered=%d", r.Scattered)
	}
	if r.Retries > 0 || r.HedgeWins > 0 {
		fmt.Fprintf(&b, " retries=%d hedge_wins=%d", r.Retries, r.HedgeWins)
	}
	if r.CacheHits+r.CacheMisses+r.CacheCollapsed+r.CacheBypass > 0 {
		fmt.Fprintf(&b, " cache_hit=%d cache_miss=%d cache_collapsed=%d cache_bypass=%d hit_rate=%.3f",
			r.CacheHits, r.CacheMisses, r.CacheCollapsed, r.CacheBypass, r.HitRate())
	}
	if r.P99MS > 0 {
		fmt.Fprintf(&b, " p50=%.1fms p99=%.1fms", r.P50MS, r.P99MS)
	}
	errs := make([]string, 0, len(r.Errors))
	for e := range r.Errors {
		errs = append(errs, e)
	}
	sort.Strings(errs)
	for _, e := range errs {
		fmt.Fprintf(&b, " err[%s]=%d", e, r.Errors[e])
	}
	return b.String()
}

func (o Options) withDefaults() Options {
	if o.Concurrency <= 0 {
		o.Concurrency = 4
	}
	if o.Requests <= 0 {
		o.Requests = 64
	}
	if o.OptionsPerRequest <= 0 {
		o.OptionsPerRequest = 8
	}
	if len(o.Mix) == 0 {
		o.Mix = map[string]int{"closed-form": 1}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Timeout <= 0 {
		o.Timeout = 60 * time.Second
	}
	if o.ScenarioGrid == [3]int{} {
		o.ScenarioGrid = [3]int{5, 3, 3}
	}
	return o
}

// mixTable flattens weights into a lookup slice for cheap sampling.
func mixTable(mix map[string]int) []string {
	names := make([]string, 0, len(mix))
	for name := range mix {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic order for a given seed
	var table []string
	for _, name := range names {
		for i := 0; i < mix[name]; i++ {
			table = append(table, name)
		}
	}
	if len(table) == 0 {
		table = []string{"closed-form"}
	}
	return table
}

// batchPools pre-generates the Zipf mode's contract batches: one pool
// per pricing method in the mix, each batch drawn from a rng seeded only
// by (seed, method, rank) so the hot set is identical across runs and
// across workers.
func batchPools(o Options, table []string) map[string][][]serve.WireOption {
	pools := make(map[string][][]serve.WireOption)
	for _, method := range table {
		if method == "greeks" || pools[method] != nil {
			continue
		}
		var methodSalt int64
		for _, c := range method {
			methodSalt = methodSalt*131 + int64(c)
		}
		rng := rand.New(rand.NewSource(o.Seed ^ methodSalt))
		pool := make([][]serve.WireOption, o.ZipfPool)
		for r := range pool {
			pool[r] = randomOptions(rng, o.OptionsPerRequest, method)
		}
		pools[method] = pool
	}
	return pools
}

// zipfCDF precomputes the cumulative rank distribution with weights
// 1/(r+1)^s. Unlike math/rand's Zipf it accepts any s >= 0 (s = 0 is
// uniform; the interesting skew ladder includes s = 1.0).
func zipfCDF(n int, s float64) []float64 {
	cdf := make([]float64, n)
	var total float64
	for r := 0; r < n; r++ {
		total += math.Pow(float64(r+1), -s)
		cdf[r] = total
	}
	for r := range cdf {
		cdf[r] /= total
	}
	return cdf
}

// zipfRank draws a rank from the precomputed CDF by inverse transform.
func zipfRank(rng *rand.Rand, cdf []float64) int {
	return sort.SearchFloat64s(cdf, rng.Float64())
}

// Run executes the load and returns the aggregate report.
func Run(o Options) (*Report, error) {
	o = o.withDefaults()
	switch o.Wire {
	case "", "json", "columnar":
	default:
		return nil, fmt.Errorf("unknown wire format %q (want json or columnar)", o.Wire)
	}
	table := mixTable(o.Mix)
	client := &http.Client{Timeout: o.Timeout}

	var (
		pools map[string][][]serve.WireOption
		cdf   []float64
	)
	if o.ZipfPool > 0 {
		if o.ZipfS < 0 {
			return nil, fmt.Errorf("zipf skew must be >= 0, got %v", o.ZipfS)
		}
		pools = batchPools(o, table)
		cdf = zipfCDF(o.ZipfPool, o.ZipfS)
	}

	var (
		mu        sync.Mutex
		rep       = &Report{Codes: make(map[int]int), Errors: make(map[string]int)}
		latencies []float64
		next      atomic.Int64
		wg        sync.WaitGroup
		market    = finbench.Market{Rate: 0.02, Volatility: 0.3}
	)
	start := time.Now()
	for w := 0; w < o.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(o.Seed + int64(w)*104729))
			for {
				i := next.Add(1)
				if i > int64(o.Requests) {
					return
				}
				var code int
				var outcome reqOutcome
				var err error
				t0 := time.Now()
				if o.Scenario {
					code, outcome, err = o.doScenario(client, rng, market)
				} else {
					method := table[rng.Intn(len(table))]
					var batch []serve.WireOption
					if pools != nil && method != "greeks" {
						batch = pools[method][zipfRank(rng, cdf)]
					}
					code, outcome, err = o.doRequest(client, rng, method, batch, market)
				}
				reqMS := float64(time.Since(t0).Microseconds()) / 1000
				mu.Lock()
				rep.Requests++
				latencies = append(latencies, reqMS)
				if err != nil {
					rep.Errors[errKey(err)]++
				} else {
					rep.Codes[code]++
					rep.Verified += outcome.verified
					rep.Mismatch += outcome.mismatch
					rep.Coalesced += outcome.coalesced
					rep.Degraded += outcome.degraded
					rep.Columnar += outcome.columnar
					rep.Scattered += outcome.scattered
					rep.Retries += outcome.retries
					rep.HedgeWins += outcome.hedgeWon
					rep.CacheHits += outcome.cacheHit
					rep.CacheMisses += outcome.cacheMiss
					rep.CacheCollapsed += outcome.cacheCollapsed
					rep.CacheBypass += outcome.cacheBypass
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	rep.ElapsedMS = time.Since(start).Milliseconds()
	rep.P50MS = percentile(latencies, 0.50)
	rep.P99MS = percentile(latencies, 0.99)
	return rep, nil
}

// percentile returns the q-quantile (nearest-rank) of values in ms.
func percentile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

type reqOutcome struct {
	verified, mismatch, coalesced, degraded int
	columnar, scattered                     int
	retries, hedgeWon                       int
	cacheHit, cacheMiss, cacheCollapsed     int
	cacheBypass                             int
}

// noteCacheHeader reads the X-Finserve-Cache outcome header a
// cache-enabled server or router attaches; absent means the cache tier
// is off and nothing is counted.
func (out *reqOutcome) noteCacheHeader(resp *http.Response) {
	switch resp.Header.Get(pricecache.Header) {
	case "hit":
		out.cacheHit = 1
	case "miss":
		out.cacheMiss = 1
	case "collapsed":
		out.cacheCollapsed = 1
	case "bypass":
		out.cacheBypass = 1
	}
}

// noteRouteHeaders reads the per-request resilience headers a shard
// router attaches; against a bare replica they are absent and the
// outcome stays zero. X-Finserve-Retries counts only sequential
// re-attempts (hedge legs are in X-Finserve-Attempts but are not
// retries).
func (out *reqOutcome) noteRouteHeaders(resp *http.Response) {
	if v := resp.Header.Get("X-Finserve-Retries"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			out.retries = n
		}
	}
	if resp.Header.Get("X-Finserve-Hedge") == "won" {
		out.hedgeWon = 1
	}
}

// errKey buckets transport errors coarsely so the report stays readable.
func errKey(err error) string {
	s := err.Error()
	switch {
	case strings.Contains(s, "connection refused"):
		return "connection-refused"
	case strings.Contains(s, "Client.Timeout"):
		return "client-timeout"
	case strings.Contains(s, "EOF"):
		return "eof"
	default:
		return "other"
	}
}

// doRequest sends one pricing request: batch overrides the contract set
// (Zipf pool mode); nil draws fresh random contracts.
func (o Options) doRequest(client *http.Client, rng *rand.Rand, method string, batch []serve.WireOption, mkt finbench.Market) (int, reqOutcome, error) {
	var out reqOutcome
	if method == "greeks" {
		return o.doGreeks(client, rng, mkt)
	}
	if batch == nil {
		batch = randomOptions(rng, o.OptionsPerRequest, method)
	}
	if o.Wire == "columnar" && method == "closed-form" {
		// Columnar is closed-form-only; the rest of the mix stays JSON.
		return o.doColumnar(client, batch, mkt)
	}
	req := serve.PriceRequest{
		Method:     method,
		Options:    batch,
		Config:     o.Config,
		DeadlineMS: o.DeadlineMS,
	}
	if method == "closed-form" {
		req.Method = "" // exercise the default path too
	}
	body, err := json.Marshal(&req)
	if err != nil {
		return 0, out, err
	}
	resp, err := client.Post(o.BaseURL+"/price", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, out, err
	}
	defer resp.Body.Close()
	out.noteRouteHeaders(resp)
	out.noteCacheHeader(resp)
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return 0, out, err
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, out, nil
	}
	var pr serve.PriceResponse
	if err := json.Unmarshal(buf.Bytes(), &pr); err != nil {
		return resp.StatusCode, out, fmt.Errorf("decoding 200 body: %w", err)
	}
	if pr.Coalesced {
		out.coalesced = 1
	}
	if pr.Degraded {
		out.degraded = 1
	}
	if o.Verify {
		v, m := verifyResponse(&req, &pr, mkt)
		out.verified, out.mismatch = v, m
	}
	return resp.StatusCode, out, nil
}

// doColumnar sends the batch as a binary columnar frame. With Verify set
// it recomputes every price from the library AND replays the same
// contracts as a JSON AOS request, requiring the two 200s bit-identical:
// the framing must be invisible in the numbers.
func (o Options) doColumnar(client *http.Client, batch []serve.WireOption, mkt finbench.Market) (int, reqOutcome, error) {
	var out reqOutcome
	cols := wire.Columns{
		Spots:    make([]float64, len(batch)),
		Strikes:  make([]float64, len(batch)),
		Expiries: make([]float64, len(batch)),
	}
	types := make([]byte, len(batch))
	for i := range batch {
		cols.Spots[i] = batch[i].Spot
		cols.Strikes[i] = batch[i].Strike
		cols.Expiries[i] = batch[i].Expiry
		types[i] = 'c'
		if batch[i].Type == "put" {
			types[i] = 'p'
		}
	}
	cols.Types = string(types)
	frame := wire.AppendColumnarRequest(nil, &wire.PriceRequest{Columnar: &cols, DeadlineMS: o.DeadlineMS})
	resp, err := client.Post(o.BaseURL+"/price", wire.ColumnarContentType, bytes.NewReader(frame))
	if err != nil {
		return 0, out, err
	}
	defer resp.Body.Close()
	out.noteRouteHeaders(resp)
	out.noteCacheHeader(resp)
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return 0, out, err
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, out, nil
	}
	pr, err := wire.DecodeColumnarResponse(buf.Bytes())
	if err != nil {
		return resp.StatusCode, out, fmt.Errorf("decoding columnar 200 body: %w", err)
	}
	out.columnar = 1
	if pr.Coalesced {
		out.coalesced = 1
	}
	if pr.Degraded {
		out.degraded = 1
	}
	if !o.Verify {
		return resp.StatusCode, out, nil
	}
	jreq := serve.PriceRequest{Options: batch, DeadlineMS: o.DeadlineMS}
	v, m := verifyResponse(&jreq, pr, mkt)
	out.verified, out.mismatch = v, m

	// Cross-framing replay: same contracts over JSON.
	body, err := json.Marshal(&jreq)
	if err != nil {
		return resp.StatusCode, out, err
	}
	jresp, err := client.Post(o.BaseURL+"/price", "application/json", bytes.NewReader(body))
	if err != nil {
		return resp.StatusCode, out, err
	}
	defer jresp.Body.Close()
	if jresp.StatusCode != http.StatusOK {
		// Shed/overload on the replay is not a framing mismatch.
		return resp.StatusCode, out, nil
	}
	var jr serve.PriceResponse
	if err := json.NewDecoder(jresp.Body).Decode(&jr); err != nil {
		return resp.StatusCode, out, fmt.Errorf("decoding cross-check body: %w", err)
	}
	if jr.Degraded != pr.Degraded || jr.Method != pr.Method {
		// A degrade flip between the two requests makes the comparison
		// meaningless; the library check above already judged each 200.
		return resp.StatusCode, out, nil
	}
	if len(jr.Results) != len(pr.Results) {
		out.mismatch += len(pr.Results)
		return resp.StatusCode, out, nil
	}
	for i := range pr.Results {
		// finlint:ignore floateq bit-reproducibility is the protocol guarantee under test
		if jr.Results[i].Price == pr.Results[i].Price {
			out.verified++
		} else {
			out.mismatch++
		}
	}
	return resp.StatusCode, out, nil
}

func (o Options) doGreeks(client *http.Client, rng *rand.Rand, mkt finbench.Market) (int, reqOutcome, error) {
	var out reqOutcome
	req := serve.GreeksRequest{Options: randomOptions(rng, o.OptionsPerRequest, "greeks")}
	body, err := json.Marshal(&req)
	if err != nil {
		return 0, out, err
	}
	resp, err := client.Post(o.BaseURL+"/greeks", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, out, err
	}
	defer resp.Body.Close()
	out.noteRouteHeaders(resp)
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return 0, out, err
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, out, nil
	}
	if !o.Verify {
		return resp.StatusCode, out, nil
	}
	var gr serve.GreeksResponse
	if err := json.Unmarshal(buf.Bytes(), &gr); err != nil {
		return resp.StatusCode, out, fmt.Errorf("decoding greeks body: %w", err)
	}
	for i := range req.Options {
		wo := &req.Options[i]
		g, err := finbench.ComputeGreeks(wo.ToOption(), mkt)
		if err != nil {
			out.mismatch++
			continue
		}
		want := g.DeltaCall
		if wo.Type == "put" {
			want = g.DeltaPut
		}
		// finlint:ignore floateq bit-reproducibility is the protocol guarantee under test
		if i < len(gr.Results) && gr.Results[i].Delta == want && gr.Results[i].Gamma == g.Gamma {
			out.verified++
		} else {
			out.mismatch++
		}
	}
	return resp.StatusCode, out, nil
}

// randomOptions draws plausible contracts. Lattice methods get a share of
// American puts; European-only methods stay European.
func randomOptions(rng *rand.Rand, n int, method string) []serve.WireOption {
	opts := make([]serve.WireOption, n)
	for i := range opts {
		o := &opts[i]
		o.Spot = 50 + 100*rng.Float64()
		o.Strike = 50 + 100*rng.Float64()
		o.Expiry = 0.1 + 3*rng.Float64()
		if rng.Intn(2) == 1 {
			o.Type = "put"
		}
		switch method {
		case "binomial-tree", "crank-nicolson", "trinomial-tree":
			if o.Type == "put" && rng.Intn(2) == 1 {
				o.Style = "american"
			}
		}
	}
	return opts
}

// verifyResponse recomputes every result from the *effective*
// method/config in the response. Closed-form goes through a 1-option
// LevelAdvanced batch — composition independence makes that equal to
// whatever mega-batch the server coalesced the request into; everything
// else goes through finbench.Price.
func verifyResponse(req *serve.PriceRequest, resp *serve.PriceResponse, mkt finbench.Market) (verified, mismatch int) {
	method, err := serve.ParseMethod(resp.Method)
	if err != nil || len(resp.Results) != len(req.Options) {
		return 0, len(req.Options)
	}
	cfg := resp.Config.ToConfig()
	for i := range req.Options {
		o := &req.Options[i]
		var want, wantStdErr float64
		if method == finbench.ClosedForm {
			b := finbench.NewBatch(1)
			b.Spots[0], b.Strikes[0], b.Expiries[0] = o.Spot, o.Strike, o.Expiry
			if err := finbench.PriceBatch(b, mkt, finbench.LevelAdvanced); err != nil {
				mismatch++
				continue
			}
			if o.Type == "put" {
				want = b.Puts[0]
			} else {
				want = b.Calls[0]
			}
		} else {
			res, err := finbench.Price(o.ToOption(), mkt, method, &cfg)
			if err != nil {
				mismatch++
				continue
			}
			want, wantStdErr = res.Price, res.StdErr
		}
		// finlint:ignore floateq bit-reproducibility is the protocol guarantee under test
		if resp.Results[i].Price == want && resp.Results[i].StdErr == wantStdErr {
			verified++
		} else {
			mismatch++
		}
	}
	return verified, mismatch
}

// SchedFrozen reads /statsz twice, gap apart, and reports whether the
// parallel pool's scheduler counters advanced in between. After a burst of
// sub-deadline requests has been cancelled, a frozen scheduler proves the
// cancelled work actually stopped consuming the pool.
func SchedFrozen(baseURL string, gap time.Duration) (bool, string, error) {
	first, err := fetchSched(baseURL)
	if err != nil {
		return false, "", err
	}
	time.Sleep(gap)
	second, err := fetchSched(baseURL)
	if err != nil {
		return false, "", err
	}
	var moved []string
	for k, v2 := range second {
		if v1, ok := first[k]; ok && v2 != v1 {
			moved = append(moved, k+":"+strconv.FormatUint(v2-v1, 10))
		}
	}
	sort.Strings(moved)
	return len(moved) == 0, strings.Join(moved, ","), nil
}

func fetchSched(baseURL string) (map[string]uint64, error) {
	resp, err := http.Get(baseURL + "/statsz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var snap serve.StatszResponse
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, err
	}
	return snap.Sched, nil
}

// RouterBreakers reads a shard router's /statsz and summarizes its
// breakers: total opens across replicas and how many are not currently
// closed. Chaos assertions are built on the deltas (breakers opened
// during the kill, all closed again after recovery).
func RouterBreakers(baseURL string) (opens uint64, notClosed int, err error) {
	resp, err := http.Get(baseURL + "/statsz")
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var snap shard.StatszResponse
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return 0, 0, err
	}
	if len(snap.Replicas) == 0 {
		return 0, 0, fmt.Errorf("%s/statsz has no replicas; not a shard router", baseURL)
	}
	for _, rs := range snap.Replicas {
		opens += rs.Breaker.Opens
		if rs.Breaker.State != "closed" {
			notClosed++
		}
	}
	return opens, notClosed, nil
}

// ParseMix parses "closed-form=8,monte-carlo=1" into a weight map.
func ParseMix(s string) (map[string]int, error) {
	mix := make(map[string]int)
	if s == "" {
		return mix, nil
	}
	for _, part := range strings.Split(s, ",") {
		name, weight, found := strings.Cut(part, "=")
		w := 1
		if found {
			var err error
			w, err = strconv.Atoi(weight)
			if err != nil || w < 0 {
				return nil, fmt.Errorf("bad mix weight %q", part)
			}
		}
		switch name {
		case "closed-form", "binomial-tree", "crank-nicolson", "monte-carlo", "trinomial-tree", "greeks":
		default:
			return nil, fmt.Errorf("unknown mix method %q", name)
		}
		mix[name] = w
	}
	return mix, nil
}

// ParseCounts parses "200:40,503:1" into minimum-count requirements.
func ParseCounts(s string) (map[int]int, error) {
	out := make(map[int]int)
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		code, count, found := strings.Cut(part, ":")
		if !found {
			return nil, fmt.Errorf("bad count spec %q", part)
		}
		c, err1 := strconv.Atoi(code)
		n, err2 := strconv.Atoi(count)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad count spec %q", part)
		}
		out[c] = n
	}
	return out, nil
}

// ParseCodes parses "200,429,503" into an allow-set.
func ParseCodes(s string) (map[int]bool, error) {
	out := make(map[int]bool)
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad code %q", part)
		}
		out[c] = true
	}
	return out, nil
}
