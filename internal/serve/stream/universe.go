package stream

import (
	"errors"
	"sort"
	"strconv"
	"strings"

	"finbench/internal/rng"
)

// Contract is one subscribable instrument of the feed's universe: a
// vanilla European option on one of the simulated underlyings. The
// universe is a pure function of (seed, size, underlyings), so any
// client can regenerate it from the hello event's parameters.
type Contract struct {
	Underlying int
	Strike     float64
	Expiry     float64
	Put        bool
}

// universeTag namespaces the universe generator's stream away from the
// ticker's walk (both derive from the one feed seed).
const universeTag = 0x0417

// UniverseContracts generates the deterministic contract universe:
// contract i sits on underlying i%underlyings with a strike drawn
// uniformly in [70, 130) and an expiry in [0.1, 2.1) years; every odd
// draw is a put. Strikes bracket the 100.0 initial spots so the walk
// keeps a mix of in/at/out-of-the-money contracts.
func UniverseContracts(seed uint64, n, underlyings int) []Contract {
	if underlyings <= 0 {
		underlyings = 1
	}
	s := rng.NewStream(0, rng.DeriveSeed(seed, universeTag))
	u := make([]float64, 3)
	out := make([]Contract, n)
	for i := range out {
		s.Uniform(u)
		out[i] = Contract{
			Underlying: i % underlyings,
			Strike:     70 + 60*u[0],
			Expiry:     0.1 + 2*u[1],
			Put:        u[2] >= 0.5,
		}
	}
	return out
}

// maxSubscription bounds one subscription's contract count, whatever the
// universe size (the router parses before it knows any replica's bound).
const maxSubscription = 1 << 20

// ParseSubscription resolves the /stream query's subscription grammar
// into a sorted, deduplicated id list: `contracts` holds comma-separated
// inclusive ranges ("0-63,128-191"; a bare "7" is the one-element range),
// `ids` holds comma-separated single ids. universe > 0 bounds the ids; a
// router passes universe <= 0 and lets each replica enforce its own
// bound. Both empty returns (nil, nil): the replica serves the whole
// universe, the router (which cannot know the universe) rejects it.
func ParseSubscription(contracts, ids string, universe int) ([]int, error) {
	var out []int
	add := func(id int) error {
		if id < 0 {
			return errors.New("stream: negative contract id")
		}
		if universe > 0 && id >= universe {
			return errors.New("stream: contract id " + strconv.Itoa(id) +
				" outside universe of " + strconv.Itoa(universe))
		}
		if len(out) >= maxSubscription {
			return errors.New("stream: subscription too large")
		}
		out = append(out, id)
		return nil
	}
	if contracts != "" {
		for _, part := range strings.Split(contracts, ",") {
			lo, hi, err := parseRange(strings.TrimSpace(part))
			if err != nil {
				return nil, err
			}
			for id := lo; id <= hi; id++ {
				if err := add(id); err != nil {
					return nil, err
				}
			}
		}
	}
	if ids != "" {
		for _, part := range strings.Split(ids, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return nil, errors.New("stream: bad contract id " + strconv.Quote(part))
			}
			if err := add(id); err != nil {
				return nil, err
			}
		}
	}
	if out == nil {
		return nil, nil
	}
	sort.Ints(out)
	dedup := out[:1]
	for _, id := range out[1:] {
		if id != dedup[len(dedup)-1] {
			dedup = append(dedup, id)
		}
	}
	return dedup, nil
}

func parseRange(s string) (lo, hi int, err error) {
	if dash := strings.IndexByte(s, '-'); dash > 0 {
		lo, err = strconv.Atoi(s[:dash])
		if err == nil {
			hi, err = strconv.Atoi(s[dash+1:])
		}
		if err != nil || hi < lo {
			return 0, 0, errors.New("stream: bad contract range " + strconv.Quote(s))
		}
		return lo, hi, nil
	}
	lo, err = strconv.Atoi(s)
	if err != nil {
		return 0, 0, errors.New("stream: bad contract range " + strconv.Quote(s))
	}
	return lo, lo, nil
}
