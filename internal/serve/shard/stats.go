package shard

import (
	"net/http"
	"time"

	"finbench/internal/resilience"
	"finbench/internal/serve/pricecache"
)

// ReplicaStatus is one replica's observable routing state.
type ReplicaStatus struct {
	URL       string                     `json:"url"`
	Healthy   bool                       `json:"healthy"`
	Draining  bool                       `json:"draining"`
	Routable  bool                       `json:"routable"`
	LoadUnits int64                      `json:"load_units"`
	Inflight  int64                      `json:"inflight"`
	Served    uint64                     `json:"served"`
	Breaker   resilience.BreakerSnapshot `json:"breaker"`
}

// StatszResponse is the router's GET /statsz body.
type StatszResponse struct {
	Replicas []ReplicaStatus `json:"replicas"`

	Requests     uint64 `json:"requests"`
	Retries      uint64 `json:"retries"`
	Failovers    uint64 `json:"failovers"`
	Hedges       uint64 `json:"hedges"`
	HedgeWins    uint64 `json:"hedge_wins"`
	NoReplica    uint64 `json:"no_replica"`
	Corrupt      uint64 `json:"corrupt_responses"`
	BudgetSpent  uint64 `json:"retry_budget_spent"`
	BudgetDenied uint64 `json:"retry_budget_denied"`
	HealthSweeps uint64 `json:"health_sweeps"`

	// ScenarioRequests counts /scenario requests; ScenarioScattered the
	// subset split across replicas; ScenarioPartitions the sub-range
	// dispatches those splits produced.
	ScenarioRequests   uint64 `json:"scenario_requests"`
	ScenarioScattered  uint64 `json:"scenario_scattered"`
	ScenarioPartitions uint64 `json:"scenario_partitions"`

	// StreamRequests counts /stream subscriptions; StreamPartitions the
	// per-replica partition streams they opened; StreamResubscribes the
	// failover re-subscriptions after a replica's stream ended;
	// StreamSlowDrops the clients disconnected for falling behind.
	StreamRequests     uint64 `json:"stream_requests"`
	StreamPartitions   uint64 `json:"stream_partitions"`
	StreamResubscribes uint64 `json:"stream_resubscribes"`
	StreamSlowDrops    uint64 `json:"stream_slow_drops"`

	UptimeS float64 `json:"uptime_s"`

	// Cache is the router-level content cache's counters (a fixed
	// struct, so snapshot encoding stays deterministic); nil when
	// caching is disabled.
	Cache *pricecache.Stats `json:"cache,omitempty"`
}

// HealthzResponse is the router's GET /healthz body.
type HealthzResponse struct {
	Status        string `json:"status"`
	RoutableCount int    `json:"replicas_routable"`
	TotalCount    int    `json:"replicas_total"`
}

// Snapshot assembles the current StatszResponse.
func (r *Router) Snapshot() StatszResponse {
	snap := StatszResponse{
		Requests:     r.requests.Load(),
		Retries:      r.retries.Load(),
		Failovers:    r.failovers.Load(),
		Hedges:       r.hedges.Load(),
		HedgeWins:    r.hedgeWins.Load(),
		NoReplica:    r.noReplica.Load(),
		Corrupt:      r.corrupt.Load(),
		HealthSweeps: r.healthSweeps.Load(),
		UptimeS:      time.Since(r.start).Seconds(),

		ScenarioRequests:   r.scenarioRequests.Load(),
		ScenarioScattered:  r.scenarioScattered.Load(),
		ScenarioPartitions: r.scenarioPartitionsSent.Load(),

		StreamRequests:     r.streamRequests.Load(),
		StreamPartitions:   r.streamPartitions.Load(),
		StreamResubscribes: r.streamResubscribes.Load(),
		StreamSlowDrops:    r.streamSlowDrops.Load(),
	}
	snap.BudgetSpent, snap.BudgetDenied = r.budget.Counters()
	if r.cache != nil {
		cs := r.cache.Snapshot()
		snap.Cache = &cs
	}
	for _, rep := range r.replicas {
		snap.Replicas = append(snap.Replicas, ReplicaStatus{
			URL:       rep.url,
			Healthy:   rep.healthy.Load(),
			Draining:  rep.draining.Load(),
			Routable:  rep.routable(),
			LoadUnits: rep.loadUnits.Load(),
			Inflight:  rep.inflight.Load(),
			Served:    rep.served.Load(),
			Breaker:   rep.breaker.Snapshot(),
		})
	}
	return snap
}

func (r *Router) handleStatsz(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	snap := r.Snapshot()
	writeJSON(w, http.StatusOK, &snap)
}

// handleHealthz reports the router's own liveness: 200 while at least
// one replica is routable, 503 otherwise (so a front-tier load balancer
// can drain a router whose whole shard is down).
func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	h := HealthzResponse{Status: "ok", TotalCount: len(r.replicas)}
	for _, rep := range r.replicas {
		if rep.routable() {
			h.RoutableCount++
		}
	}
	if h.RoutableCount == 0 {
		h.Status = "unroutable"
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, &h)
		return
	}
	writeJSON(w, http.StatusOK, &h)
}
