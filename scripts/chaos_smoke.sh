#!/usr/bin/env bash
# scripts/chaos_smoke.sh — chaos gate for the sharded finserve tier.
# Boots the real router over real replica processes and injects the
# failures the resilience layer claims to survive; every assertion lives
# in loadgen flags or a diff (no curl/jq):
#
#   phase 1  seed determinism: the fault injector's decision stream for a
#            spec is a pure function of the seed — two runs of
#            `finserve fault` must print byte-identical digests, so any
#            chaos run is replayable from its spec alone
#   phase 2  availability under injected faults: 3 replicas each behind a
#            10% connection-fault injector (refuse/reset/truncate); the
#            routed mix must stay ≥99% 200s and every 200 must bit-match
#            the library recomputation (-verify through the router)
#   phase 3  replica death mid-burst: kill -9 one replica during a burst;
#            availability floor holds, the dead replica's breaker opens,
#            the supervisor revives it, and a follow-up run proves the
#            breaker probed and re-closed (open -> half-open -> closed)
#
# Monte Carlo is deliberately absent from the mixes: MC answers are
# decomposition-dependent, so the router never retries or hedges them
# (same rule as coalescing) and a faulted MC request fails honestly.
#
# Usage: ./scripts/chaos_smoke.sh   (CHAOS_PORT / CHAOS_PORT_BASE override)
set -euo pipefail
cd "$(dirname "$0")/.."

RPORT="${CHAOS_PORT:-8261}"
PBASE="${CHAOS_PORT_BASE:-9311}"
URL="http://127.0.0.1:${RPORT}"
SPEC="42:0.10:refuse,reset,truncate"
TMP="$(mktemp -d)"
BIN="$TMP/finserve"
LOG="$TMP/route.log"
ROUTER_PID=""

cleanup() {
	if [[ -n "$ROUTER_PID" ]] && kill -0 "$ROUTER_PID" 2>/dev/null; then
		kill -KILL "$ROUTER_PID" 2>/dev/null || true
	fi
	# The router SIGTERMs its children on shutdown; sweep any orphans the
	# KILL above may have left behind (children run from the tmp binary,
	# so the pattern cannot touch unrelated processes).
	pkill -KILL -f "$BIN serve" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
	echo "chaos: FAIL: $*" >&2
	echo "--- router log ---" >&2
	cat "$LOG" >&2 || true
	exit 1
}

wait_port() {
	local port="$1"
	for _ in $(seq 1 100); do
		if (exec 3<>"/dev/tcp/127.0.0.1/${port}") 2>/dev/null; then
			exec 3>&- 3<&- || true
			return 0
		fi
		sleep 0.1
	done
	fail "nothing listening on :${port}"
}

# wait_ready polls the router's own /healthz until it reports all 3
# replicas routable — the router's initial health sweep can race the
# replicas' first listen, so traffic before readiness would measure the
# boot race, not the resilience layer.
wait_ready() {
	local resp
	for _ in $(seq 1 100); do
		resp=$( (exec 3<>"/dev/tcp/127.0.0.1/${RPORT}" &&
			printf 'GET /healthz HTTP/1.0\r\n\r\n' >&3 && cat <&3) 2>/dev/null || true)
		if grep -q '"replicas_routable":3' <<<"$resp"; then
			return 0
		fi
		sleep 0.1
	done
	fail "router never reported 3 routable replicas"
}

# boot_router <port-base> <router flags...> — spawns the router fronting 3
# replica children and waits until every replica is routable.
boot_router() {
	local base="$1"
	shift
	: >"$LOG"
	"$BIN" route -addr "127.0.0.1:${RPORT}" -replicas 3 -port-base "$base" "$@" >>"$LOG" 2>&1 &
	ROUTER_PID=$!
	wait_port "$RPORT"
	wait_ready
}

# SIGTERM the router and require exit 0 (it must also reap its replicas).
stop_router() {
	local rc=0
	kill -TERM "$ROUTER_PID"
	wait "$ROUTER_PID" || rc=$?
	ROUTER_PID=""
	[[ $rc -eq 0 ]] || fail "router exited $rc on SIGTERM"
}

echo "==> chaos: building finserve"
go build -o "$BIN" ./cmd/finserve

echo "==> chaos phase 1: fault-decision digest is a pure function of the spec"
"$BIN" fault -spec "$SPEC" -n 4096 >"$TMP/digest.a" || fail "fault subcommand"
"$BIN" fault -spec "$SPEC" -n 4096 >"$TMP/digest.b" || fail "fault subcommand (rerun)"
diff -u "$TMP/digest.a" "$TMP/digest.b" || fail "same spec produced different decision digests"
grep -q "digest=" "$TMP/digest.a" || fail "fault subcommand printed no digest"
cat "$TMP/digest.a"

echo "==> chaos phase 2: >=99% availability at 10% injected faults, 200s bit-clean"
boot_router "$PBASE" \
	-replica-flags "-fault-spec $SPEC" \
	-health-interval 100ms -max-attempts 4 -hedge-delay 25ms -budget-ratio -1
"$BIN" loadgen -url "$URL" -requests 120 -concurrency 6 \
	-mix "closed-form=6,binomial-tree=2,greeks=2" \
	-options 4 -binomial-steps 128 \
	-verify -assert-availability 99 -assert-max-retries 240 ||
	fail "phase 2 (availability floor / bit-clean under faults)"
stop_router

echo "==> chaos phase 3: replica killed mid-burst; breaker opens, then recovers"
boot_router "$((PBASE + 10))" \
	-restart-delay 700ms -health-interval 300ms -max-attempts 4 \
	-hedge-delay 25ms -budget-ratio -1 \
	-breaker-failures 1 -breaker-open-for 500ms
"$BIN" loadgen -url "$URL" -requests 1200 -concurrency 6 \
	-mix "closed-form=1" -options 4 \
	-verify -assert-availability 99 >"$TMP/burst.out" 2>&1 &
BURST_PID=$!
sleep 0.15
VICTIM=$(grep -m1 "route: replica 0 pid" "$LOG" | awk '{print $5}')
[[ -n "$VICTIM" ]] || fail "could not find replica 0 pid in router log"
kill -KILL "$VICTIM" 2>/dev/null || true
if ! wait "$BURST_PID"; then
	cat "$TMP/burst.out" >&2 || true
	fail "phase 3 burst (availability floor through a replica kill)"
fi
cat "$TMP/burst.out"
# Revival (700ms) + a health sweep (300ms) + the breaker's open window
# (500ms) must all elapse before the recovery probe can happen.
sleep 2
"$BIN" loadgen -url "$URL" -requests 40 -concurrency 4 \
	-mix "closed-form=1" -options 4 \
	-assert-codes 200 -assert-min-breaker-opens 1 -assert-breakers-closed ||
	fail "phase 3 recovery (breaker open -> half-open -> closed)"
stop_router

echo "chaos: all phases passed"
