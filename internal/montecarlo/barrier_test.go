package montecarlo

import (
	"math"
	"testing"

	"finbench/internal/blackscholes"
)

var dob = DownOutCall{S: 100, X: 100, H: 85, T: 1, Steps: 64}

func TestBarrierClosedFormBounds(t *testing.T) {
	cdo, err := DownOutCallClosedForm(dob, mkt)
	if err != nil {
		t.Fatal(err)
	}
	vanilla, _ := blackscholes.PriceScalar(100, 100, 1, mkt)
	if cdo <= 0 || cdo >= vanilla {
		t.Fatalf("down-and-out %g outside (0, vanilla %g)", cdo, vanilla)
	}
	// A barrier far below spot barely bites: price approaches vanilla.
	far := dob
	far.H = 20
	cdoFar, _ := DownOutCallClosedForm(far, mkt)
	if vanilla-cdoFar > 0.01 {
		t.Fatalf("distant barrier: %g vs vanilla %g", cdoFar, vanilla)
	}
	// A barrier just below spot kills most value.
	near := dob
	near.H = 99
	cdoNear, _ := DownOutCallClosedForm(near, mkt)
	if cdoNear > 0.5*vanilla {
		t.Fatalf("near barrier retains too much value: %g", cdoNear)
	}
}

// The bridge-corrected MC must match the continuous-monitoring closed form.
// This cross-validates two fully independent implementations: the Merton
// reflection formula and the per-interval crossing probability.
func TestBarrierCorrectedMCMatchesClosedForm(t *testing.T) {
	want, err := DownOutCallClosedForm(dob, mkt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DownOutCallMC(dob, 1<<17, 11, true, mkt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Price-want) > 4*got.StdErr+0.02 {
		t.Fatalf("corrected MC %g +- %g vs closed form %g", got.Price, got.StdErr, want)
	}
}

// The uncorrected (discrete-monitoring) estimator must be biased high —
// it misses intra-interval crossings — and must approach the continuous
// value as monitoring frequency grows.
func TestBarrierDiscreteMonitoringBias(t *testing.T) {
	cont, _ := DownOutCallClosedForm(dob, mkt)

	coarse := dob
	coarse.Steps = 8
	d8, err := DownOutCallMC(coarse, 1<<16, 5, false, mkt)
	if err != nil {
		t.Fatal(err)
	}
	fine := dob
	fine.Steps = 256
	d256, err := DownOutCallMC(fine, 1<<16, 5, false, mkt)
	if err != nil {
		t.Fatal(err)
	}
	if d8.Price <= cont {
		t.Fatalf("8-date discrete %g not above continuous %g", d8.Price, cont)
	}
	if d256.Price <= cont-4*d256.StdErr {
		t.Fatalf("256-date discrete %g fell below continuous %g", d256.Price, cont)
	}
	if d256.Price >= d8.Price {
		t.Fatalf("finer monitoring %g did not reduce the discrete price %g", d256.Price, d8.Price)
	}
}

func TestBarrierValidation(t *testing.T) {
	bad := dob
	bad.H = 120 // above spot and strike
	if _, err := DownOutCallClosedForm(bad, mkt); err != ErrBarrier {
		t.Fatalf("H above S: %v", err)
	}
	if _, err := DownOutCallMC(bad, 10, 1, true, mkt); err != ErrBarrier {
		t.Fatalf("MC accepted bad barrier: %v", err)
	}
	bad = dob
	bad.Steps = 0
	if _, err := DownOutCallMC(bad, 10, 1, true, mkt); err != ErrBarrier {
		t.Fatal("zero steps accepted")
	}
}

func TestBarrierMonotoneInBarrier(t *testing.T) {
	prev := math.Inf(1)
	for _, h := range []float64{60, 75, 90, 98} {
		b := dob
		b.H = h
		cdo, err := DownOutCallClosedForm(b, mkt)
		if err != nil {
			t.Fatal(err)
		}
		if cdo >= prev {
			t.Fatalf("H=%g: price %g not decreasing (prev %g)", h, cdo, prev)
		}
		prev = cdo
	}
}

func BenchmarkBarrierCorrectedMC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		DownOutCallMC(dob, 1<<14, 1, true, mkt)
	}
}
