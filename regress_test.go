package finbench

// Regression tests for the RNG-reuse and batch-result bugs: Simulate and
// SimulateTerminal used to rebuild the stream from ps.Seed on every call
// (identical output on repeat calls), and ProfileBatch at LevelBasic
// priced into a private AOS without copying the results back.

import (
	"runtime"
	"testing"
)

func pathsEqual(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestSimulateSuccessiveCallsDiffer pins that repeated Simulate calls draw
// fresh randomness, while two simulators with equal seeds still match
// call-for-call.
func TestSimulateSuccessiveCallsDiffer(t *testing.T) {
	a, err := NewPathSimulator(16, 1, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewPathSimulator(16, 1, 99)
	a1 := a.Simulate(8, 100, tMkt)
	a2 := a.Simulate(8, 100, tMkt)
	if pathsEqual(a1, a2) {
		t.Fatal("two successive Simulate calls produced identical paths")
	}
	b1 := b.Simulate(8, 100, tMkt)
	b2 := b.Simulate(8, 100, tMkt)
	if !pathsEqual(a1, b1) || !pathsEqual(a2, b2) {
		t.Fatal("equal-seed simulators diverged call-for-call")
	}
}

// TestSimulateTerminalSuccessiveCallsDiffer is the terminal-price analogue,
// and additionally pins that the SimulateTerminal counter advances
// independently of Simulate's.
func TestSimulateTerminalSuccessiveCallsDiffer(t *testing.T) {
	a, err := NewPathSimulator(16, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewPathSimulator(16, 1, 42)
	a1 := a.SimulateTerminal(64, 100, tMkt)
	a2 := a.SimulateTerminal(64, 100, tMkt)
	same := true
	for i := range a1 {
		if a1[i] != a2[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two successive SimulateTerminal calls produced identical prices")
	}
	// An interleaved Simulate call must not perturb the terminal sequence.
	b.Simulate(4, 100, tMkt)
	b1 := b.SimulateTerminal(64, 100, tMkt)
	for i := range a1 {
		if a1[i] != b1[i] {
			t.Fatalf("terminal sequence depends on Simulate history: index %d: %g vs %g", i, a1[i], b1[i])
		}
	}
}

// TestProfileBatchBasicFillsResults pins that LevelBasic copies prices back
// into the batch like the SOA levels do.
func TestProfileBatchBasicFillsResults(t *testing.T) {
	b := NewBatch(32)
	for i := range b.Spots {
		b.Spots[i], b.Strikes[i], b.Expiries[i] = 100+float64(i), 100, 1
	}
	if _, err := ProfileBatch(b, tMkt, LevelBasic, 4); err != nil {
		t.Fatal(err)
	}
	want := NewBatch(32)
	copy(want.Spots, b.Spots)
	copy(want.Strikes, b.Strikes)
	copy(want.Expiries, b.Expiries)
	if err := PriceBatch(want, tMkt, LevelBasic); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < b.Len(); i++ {
		if b.Calls[i] == 0 && b.Puts[i] == 0 {
			t.Fatalf("option %d left unpriced after basic profile", i)
		}
		if b.Calls[i] != want.Calls[i] || b.Puts[i] != want.Puts[i] {
			t.Fatalf("option %d: profile (%g, %g) != price (%g, %g)",
				i, b.Calls[i], b.Puts[i], want.Calls[i], want.Puts[i])
		}
	}
}

// TestInterleaveWidthFollowsWorkers pins the width derivation: pool worker
// count, clamped to the path count, capped at the ISA maximum, rounded
// down to a power of two.
func TestInterleaveWidthFollowsWorkers(t *testing.T) {
	cases := []struct {
		procs, n, want int
	}{
		{1, 100, 1},
		{2, 100, 2},
		{4, 100, 4},
		{6, 100, 4},  // round down to a power of two
		{8, 100, 8},  // vec.MaxWidth
		{16, 100, 8}, // capped at vec.MaxWidth
		{8, 3, 2},    // clamped to n, then rounded down
		{8, 1, 1},
	}
	for _, tc := range cases {
		old := runtime.GOMAXPROCS(tc.procs)
		got := interleaveWidth(tc.n)
		runtime.GOMAXPROCS(old)
		if got != tc.want {
			t.Errorf("interleaveWidth(n=%d) at %d procs = %d, want %d",
				tc.n, tc.procs, got, tc.want)
		}
	}
}
