package bench

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"

	"finbench/internal/serve"
	"finbench/internal/serve/wire"
)

// servepath: end-to-end latency and allocation budget of the serving
// tier, measured through the real handler stack (admission control,
// decode, kernel dispatch, encode) with the coalescer bypassed so one
// invocation is exactly one request. Unlike the kernel experiments,
// these rows gate allocs/op: a new per-request allocation on this path
// multiplies by the request rate, and the snapshot diff rejects it even
// when the wall-clock cost hides inside timing noise.
//
// The harness itself must not allocate per invocation, or its own
// garbage would be charged to the server and mask a regression to (or
// from) the zero-allocation steady state: the request and its body
// reader are built once and rewound between calls.

func init() {
	register(&Experiment{
		ID:          "servepath",
		Title:       "Serving-tier request path (in-process)",
		Units:       "options/s",
		Description: "Requests driven through serve.Server's handler in-process: closed-form /price batches (JSON and binary columnar framing) and /greeks. Rows gate allocs/op in benchreg snapshots.",
		Measure:     measureServePath,
	})
}

// discardRecorder is a reusable http.ResponseWriter that drops the body:
// response bytes are the server's allocations to count, not the
// harness's to retain.
type discardRecorder struct {
	header http.Header
	code   int
}

func (r *discardRecorder) Header() http.Header         { return r.header }
func (r *discardRecorder) Write(p []byte) (int, error) { return len(p), nil }
func (r *discardRecorder) WriteHeader(c int)           { r.code = c }

func (r *discardRecorder) reset() {
	r.code = 0
	for k := range r.header {
		delete(r.header, k)
	}
}

// rewindBody is a reusable request body: a bytes.Reader over a fixed
// payload plus a no-op Close, rewound between handler invocations so
// the same http.Request can be served repeatedly without per-call
// reader construction.
type rewindBody struct {
	bytes.Reader
}

func (b *rewindBody) Close() error { return nil }

func (b *rewindBody) rewind() {
	if _, err := b.Seek(0, io.SeekStart); err != nil {
		panic(err) // bytes.Reader cannot fail an in-range seek
	}
}

// servePathBody builds a deterministic n-option request body for path.
func servePathBody(path string, n int) []byte {
	var b bytes.Buffer
	b.WriteString(`{"options":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		// Spot/strike/expiry vary with the index so the batch is not one
		// repeated contract, but stay fixed run to run (no RNG).
		fmt.Fprintf(&b, `{"spot":%g,"strike":%g,"expiry":%g}`,
			90.0+float64(i%21), 80.0+float64(i%41), 0.25+float64(i%8)*0.25)
	}
	b.WriteString(`]`)
	if path == "/price" {
		b.WriteString(`,"method":"closed-form"`)
	}
	b.WriteString(`}`)
	return b.Bytes()
}

// servePathColumnar builds the binary columnar frame for the same
// deterministic n-option batch servePathBody produces.
func servePathColumnar(n int) []byte {
	cols := wire.Columns{
		Spots:    make([]float64, n),
		Strikes:  make([]float64, n),
		Expiries: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		cols.Spots[i] = 90.0 + float64(i%21)
		cols.Strikes[i] = 80.0 + float64(i%41)
		cols.Expiries[i] = 0.25 + float64(i%8)*0.25
	}
	return wire.AppendColumnarRequest(nil, &wire.PriceRequest{Columnar: &cols})
}

func measureServePath(scale float64) (*Result, error) {
	// CoalesceMaxBatch 1 makes every request bypass the coalescer (no
	// window timer on the measured path); ProfileEvery < 0 keeps the op
	// mix sampler's instrumented reruns out of the timings.
	s := serve.New(serve.Config{CoalesceMaxBatch: 1, ProfileEvery: -1})
	defer s.Close()
	h := s.Handler()

	batch := scaleInt(4096, scale, 16)
	r := &Result{
		ID:    "servepath",
		Title: fmt.Sprintf("Serving-tier request path (%d options/request, in-process)", batch),
		Units: "options/s",
	}
	for _, ep := range []struct {
		label, path, contentType string
		body                     []byte
	}{
		{"/price closed-form batch", "/price", "application/json", servePathBody("/price", batch)},
		{"/price closed-form batch (columnar frame)", "/price", wire.ColumnarContentType, servePathColumnar(batch)},
		{"/greeks closed-form batch", "/greeks", "application/json", servePathBody("/greeks", batch)},
	} {
		// Build the request once; rewind its body between invocations so
		// only the server's allocations land in the gated rows.
		body := &rewindBody{}
		body.Reset(ep.body)
		req := httptest.NewRequest(http.MethodPost, ep.path, nil)
		req.Body = body
		req.ContentLength = int64(len(ep.body))
		req.Header.Set("Content-Type", ep.contentType)
		rec := &discardRecorder{header: make(http.Header)}
		call := func() {
			rec.reset()
			body.rewind()
			h.ServeHTTP(rec, req)
		}
		// One untimed probe: a non-200 would otherwise time the error
		// path and gate on its (much smaller) allocation count.
		call()
		if rec.code != http.StatusOK {
			return nil, fmt.Errorf("bench: servepath %s returned status %d", ep.label, rec.code)
		}
		row := hostRow(ep.label, batch, call)
		row.GateAllocs = true
		row.Prov = None
		r.Rows = append(r.Rows, row)
	}
	r.Notes = append(r.Notes,
		"one invocation = one request through the full handler stack (admission, decode, kernel, encode); coalescer bypassed",
		"allocs/op rows are gated in benchreg snapshots: a new per-request allocation fails the check even inside timing noise",
		"the harness reuses one request and rewinds its body between calls, so gated allocs/op counts are the server's alone")
	return r, nil
}
