package perf

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	if OpVecFMA.String() != "vec.fma" {
		t.Fatalf("OpVecFMA = %q", OpVecFMA.String())
	}
	if OpRNG.String() != "rng.uniform" {
		t.Fatalf("OpRNG = %q", OpRNG.String())
	}
	if got := Op(-1).String(); !strings.Contains(got, "perf.Op") {
		t.Fatalf("invalid op String = %q", got)
	}
	if got := Op(999).String(); !strings.Contains(got, "999") {
		t.Fatalf("out-of-range op String = %q", got)
	}
}

func TestAddGet(t *testing.T) {
	var c Counts
	c.Add(OpVecMul, 3)
	c.Add(OpVecMul, 4)
	if c.Get(OpVecMul) != 7 {
		t.Fatalf("Get(OpVecMul) = %d, want 7", c.Get(OpVecMul))
	}
	if c.Get(OpVecAdd) != 0 {
		t.Fatalf("Get(OpVecAdd) = %d, want 0", c.Get(OpVecAdd))
	}
}

func TestAddBytes(t *testing.T) {
	var c Counts
	c.AddBytes(24, 16)
	c.AddBytes(24, 16)
	if c.BytesRead != 48 || c.BytesWritten != 32 {
		t.Fatalf("bytes = %d/%d, want 48/32", c.BytesRead, c.BytesWritten)
	}
}

func TestMerge(t *testing.T) {
	a := Counts{Width: 8, Items: 10}
	a.Add(OpExp, 5)
	a.AddBytes(100, 50)
	b := Counts{Items: 20}
	b.Add(OpExp, 7)
	b.Add(OpVecAdd, 2)
	b.AddBytes(10, 5)
	a.Merge(b)
	if a.Get(OpExp) != 12 || a.Get(OpVecAdd) != 2 {
		t.Fatalf("merged ops wrong: %v", a)
	}
	if a.BytesRead != 110 || a.BytesWritten != 55 {
		t.Fatalf("merged bytes wrong: %v", a)
	}
	if a.Items != 30 {
		t.Fatalf("merged items = %d, want 30", a.Items)
	}
	if a.Width != 8 {
		t.Fatalf("merge clobbered width: %d", a.Width)
	}
}

func TestMergeAdoptsWidth(t *testing.T) {
	var a Counts
	a.Merge(Counts{Width: 4})
	if a.Width != 4 {
		t.Fatalf("width = %d, want 4", a.Width)
	}
}

func TestScaleAndPerItem(t *testing.T) {
	c := Counts{Items: 100, Width: 4}
	c.Add(OpVecMul, 1000)
	c.AddBytes(2400, 1600)
	c.Scale(2)
	if c.Get(OpVecMul) != 2000 || c.Items != 200 || c.BytesRead != 4800 {
		t.Fatalf("scale(2): %v", c)
	}
	pi := c.PerItem()
	if pi.Items != 1 {
		t.Fatalf("PerItem items = %d", pi.Items)
	}
	if pi.Get(OpVecMul) != 10 {
		t.Fatalf("PerItem vec.mul = %d, want 10", pi.Get(OpVecMul))
	}
	// Original must be unmodified.
	if c.Get(OpVecMul) != 2000 {
		t.Fatalf("PerItem mutated receiver")
	}
}

func TestPerItemSingle(t *testing.T) {
	c := Counts{Items: 1}
	c.Add(OpScalar, 7)
	pi := c.PerItem()
	if pi.Get(OpScalar) != 7 || pi.Items != 1 {
		t.Fatalf("PerItem on 1 item changed counts: %v", pi)
	}
}

func TestTotal(t *testing.T) {
	var c Counts
	c.Add(OpVecMul, 3)
	c.Add(OpScalar, 4)
	c.Add(OpRNG, 5)
	if c.Total() != 12 {
		t.Fatalf("Total = %d, want 12", c.Total())
	}
}

func TestFLOPsVectorWidth(t *testing.T) {
	c := Counts{Width: 8}
	c.Add(OpVecFMA, 10) // 10 FMAs x 2 flops x 8 lanes = 160
	c.Add(OpVecAdd, 5)  // 5 x 8 = 40
	c.Add(OpScalar, 3)  // 3
	if got := c.FLOPs(); got != 203 {
		t.Fatalf("FLOPs = %d, want 203", got)
	}
}

func TestFLOPsScalarDefaultsWidthOne(t *testing.T) {
	var c Counts // Width 0 => treated as 1
	c.Add(OpVecAdd, 5)
	if got := c.FLOPs(); got != 5 {
		t.Fatalf("FLOPs = %d, want 5", got)
	}
}

func TestFLOPsTranscendentalWeights(t *testing.T) {
	c := Counts{Width: 1}
	c.Add(OpExp, 1)
	c.Add(OpCND, 1)
	want := uint64(15 + 30)
	if got := c.FLOPs(); got != want {
		t.Fatalf("FLOPs = %d, want %d", got, want)
	}
	// Transcendentals are per-element counts: width must not scale them.
	c8 := Counts{Width: 8}
	c8.Add(OpExp, 8) // one 8-wide vector exp call
	if got := c8.FLOPs(); got != 8*15 {
		t.Fatalf("vector exp FLOPs = %d, want %d", got, 8*15)
	}
}

func TestArithmeticIntensity(t *testing.T) {
	c := Counts{Width: 1}
	c.Add(OpScalar, 200)
	c.AddBytes(24, 16)
	ai := c.ArithmeticIntensity()
	if math.Abs(ai-5.0) > 1e-12 {
		t.Fatalf("AI = %g, want 5", ai)
	}
}

func TestArithmeticIntensityNoTraffic(t *testing.T) {
	c := Counts{Width: 1}
	c.Add(OpScalar, 10)
	if ai := c.ArithmeticIntensity(); !math.IsInf(ai, 1) {
		t.Fatalf("AI with zero traffic = %g, want +Inf", ai)
	}
}

func TestStringFormat(t *testing.T) {
	c := Counts{Items: 2, Width: 4}
	c.Add(OpExp, 9)
	c.Add(OpVecMul, 3)
	c.AddBytes(10, 20)
	s := c.String()
	for _, want := range []string{"items=2", "width=4", "math.exp=9", "vec.mul=3", "rd=10B", "wr=20B"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	// Sorted descending: exp before mul.
	if strings.Index(s, "math.exp") > strings.Index(s, "vec.mul") {
		t.Fatalf("String() not sorted by count: %q", s)
	}
}

func TestStringOmitsZeroTraffic(t *testing.T) {
	var c Counts
	if s := c.String(); strings.Contains(s, "rd=") {
		t.Fatalf("String with zero traffic shows bytes: %q", s)
	}
}

// Property: Merge is commutative over op counts and traffic.
func TestMergeCommutativeQuick(t *testing.T) {
	f := func(a1, a2, b1, b2 uint32, r1, w1, r2, w2 uint32) bool {
		x := Counts{}
		x.Add(OpVecMul, uint64(a1))
		x.Add(OpExp, uint64(a2))
		x.AddBytes(uint64(r1), uint64(w1))
		y := Counts{}
		y.Add(OpVecMul, uint64(b1))
		y.Add(OpExp, uint64(b2))
		y.AddBytes(uint64(r2), uint64(w2))
		xy, yx := x, y
		xy.Merge(y)
		yx.Merge(x)
		return xy.N == yx.N && xy.BytesRead == yx.BytesRead && xy.BytesWritten == yx.BytesWritten
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: scaling by 1 is identity on counts.
func TestScaleIdentityQuick(t *testing.T) {
	f := func(n uint32, r uint32) bool {
		c := Counts{Items: 3}
		c.Add(OpRNG, uint64(n))
		c.AddBytes(uint64(r), 0)
		d := c
		d.Scale(1)
		return d.N == c.N && d.BytesRead == c.BytesRead && d.Items == c.Items
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFLOPsMonotoneInWidthQuick(t *testing.T) {
	f := func(nMul, nFMA uint16) bool {
		c4 := Counts{Width: 4}
		c8 := Counts{Width: 8}
		c4.Add(OpVecMul, uint64(nMul))
		c8.Add(OpVecMul, uint64(nMul))
		c4.Add(OpVecFMA, uint64(nFMA))
		c8.Add(OpVecFMA, uint64(nFMA))
		return c8.FLOPs() == 2*c4.FLOPs()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Map serializes the mix for benchreg snapshots: zero classes omitted,
// traffic and metadata under reserved keys.
func TestCountsMap(t *testing.T) {
	var c Counts
	c.Add(OpVecFMA, 100)
	c.Add(OpErf, 7)
	c.AddBytes(4096, 1024)
	c.Items = 64
	c.Width = 8
	m := c.Map()
	want := map[string]uint64{
		"vec.fma": 100, "math.erf": 7,
		"bytes.read": 4096, "bytes.written": 1024,
		"meta.items": 64, "meta.width": 8,
	}
	if len(m) != len(want) {
		t.Fatalf("Map has %d keys, want %d: %v", len(m), len(want), m)
	}
	for k, v := range want {
		if m[k] != v {
			t.Errorf("Map[%q] = %d, want %d", k, m[k], v)
		}
	}
	if empty := (Counts{}).Map(); len(empty) != 0 {
		t.Errorf("empty Counts maps to %v, want empty", empty)
	}
}

// Delta subtracts counters but carries Workers (a level, not a counter)
// from the newer snapshot.
func TestSchedStatsDelta(t *testing.T) {
	prev := SchedStats{Jobs: 10, Serial: 100, Dispatched: 30, Handoffs: 20, Steals: 10, Workers: 3}
	cur := SchedStats{Jobs: 15, Serial: 160, Dispatched: 50, Handoffs: 33, Steals: 17, Workers: 7}
	d := cur.Delta(prev)
	want := SchedStats{Jobs: 5, Serial: 60, Dispatched: 20, Handoffs: 13, Steals: 7, Workers: 7}
	if d != want {
		t.Fatalf("Delta = %+v, want %+v", d, want)
	}
	if d.Dispatched != d.Handoffs+d.Steals {
		t.Fatalf("delta unbalanced: %v", d)
	}
}

// SchedStats.Map keeps zero fields: zero handoffs next to nonzero
// dispatched is itself informative.
func TestSchedStatsMap(t *testing.T) {
	s := SchedStats{Jobs: 2, Dispatched: 6, Steals: 6, Workers: 4}
	m := s.Map()
	want := map[string]uint64{
		"pool.jobs": 2, "pool.serial": 0, "pool.dispatched": 6,
		"pool.handoffs": 0, "pool.steals": 6, "pool.workers": 4,
	}
	if len(m) != len(want) {
		t.Fatalf("Map has %d keys, want %d: %v", len(m), len(want), m)
	}
	for k, v := range want {
		if m[k] != v {
			t.Errorf("Map[%q] = %d, want %d", k, m[k], v)
		}
	}
}
