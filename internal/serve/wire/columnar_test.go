package wire

import (
	"bytes"
	"strings"
	"testing"

	"finbench"
)

func TestColumnarRequestRoundTrip(t *testing.T) {
	cases := []*PriceRequest{
		{Columnar: &Columns{Spots: []float64{100}, Strikes: []float64{105}, Expiries: []float64{0.5}}},
		{
			Columnar: &Columns{
				Spots:    []float64{100, 101.5, 99.25},
				Strikes:  []float64{105, 106, 107},
				Expiries: []float64{0.5, 0.25, 1},
				Types:    "cpc",
				Styles:   "eee",
			},
			DeadlineMS: 2500,
		},
	}
	for i, req := range cases {
		frame := AppendColumnarRequest(nil, req)
		got, method, err := DecodeColumnarRequest(frame)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if method != finbench.ClosedForm {
			t.Fatalf("case %d: method %v", i, method)
		}
		if !sameRequest(got, req) {
			t.Fatalf("case %d: round trip diverges:\n got: %+v\nwant: %+v", i, got.Columnar, req.Columnar)
		}
		// Re-encode must be byte-identical.
		again := AppendColumnarRequest(nil, got)
		if !bytes.Equal(again, frame) {
			t.Fatalf("case %d: re-encode differs", i)
		}
		PutRequest(got)
	}
}

func TestColumnarRequestRejects(t *testing.T) {
	good := AppendColumnarRequest(nil, &PriceRequest{
		Columnar: &Columns{Spots: []float64{100}, Strikes: []float64{105}, Expiries: []float64{0.5}},
	})
	reject := func(name string, frame []byte, wantSub string) {
		t.Helper()
		if _, _, err := DecodeColumnarRequest(frame); err == nil {
			t.Errorf("%s: accepted", name)
		} else if wantSub != "" && !strings.Contains(err.Error(), wantSub) {
			t.Errorf("%s: error %q missing %q", name, err, wantSub)
		}
	}
	reject("empty", nil, "truncated")
	reject("short header", good[:10], "truncated")
	badMagic := append([]byte{}, good...)
	badMagic[0] = 'X'
	reject("bad magic", badMagic, "magic")
	badFlags := append([]byte{}, good...)
	badFlags[4] = 0x80
	reject("unknown flags", badFlags, "flags")
	reject("truncated body", good[:len(good)-1], "length")
	reject("trailing bytes", append(append([]byte{}, good...), 0), "length")
	negSpot := AppendColumnarRequest(nil, &PriceRequest{
		Columnar: &Columns{Spots: []float64{-1}, Strikes: []float64{105}, Expiries: []float64{0.5}},
	})
	reject("negative spot", negSpot, "positive")
	amer := AppendColumnarRequest(nil, &PriceRequest{
		Columnar: &Columns{Spots: []float64{100}, Strikes: []float64{105}, Expiries: []float64{0.5}, Styles: "a"},
	})
	reject("american style", amer, "European-only")
	badType := AppendColumnarRequest(nil, &PriceRequest{
		Columnar: &Columns{Spots: []float64{100}, Strikes: []float64{105}, Expiries: []float64{0.5}, Types: "x"},
	})
	reject("bad type", badType, "unknown option type")
	// A count field implying more data than the frame has must fail the
	// length check before any allocation.
	huge := append([]byte{}, good...)
	huge[9], huge[10], huge[11], huge[12] = 0xff, 0xff, 0xff, 0xff
	reject("count overflow", huge, "length")
}

func TestColumnarResponseRoundTrip(t *testing.T) {
	cases := []*PriceResponse{
		{
			Results: []Result{{Price: 10.450583572185565}},
			Method:  "closed-form",
			Engine:  "batch-advanced",
		},
		{
			Results:      []Result{{Price: 1.5}, {Price: -0.0}, {Price: 2.25}},
			Method:       "closed-form",
			Config:       Config{BinomialSteps: 512, GridPoints: 7, TimeSteps: 9, MCPaths: 11, Seed: 1234567890123},
			Engine:       "batch-advanced",
			Degraded:     true,
			Coalesced:    true,
			BatchOptions: 4096,
			ElapsedUS:    987654,
		},
	}
	for i, r := range cases {
		frame, err := AppendColumnarResponse(nil, r)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !ValidColumnarResponse(frame) {
			t.Fatalf("case %d: ValidColumnarResponse rejects own encoding", i)
		}
		got, err := DecodeColumnarResponse(frame)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if got.Method != r.Method || got.Engine != r.Engine || got.Config != r.Config ||
			got.Degraded != r.Degraded || got.Coalesced != r.Coalesced ||
			got.BatchOptions != r.BatchOptions || got.ElapsedUS != r.ElapsedUS {
			t.Fatalf("case %d: metadata diverges: %+v vs %+v", i, got, r)
		}
		if len(got.Results) != len(r.Results) {
			t.Fatalf("case %d: %d results", i, len(got.Results))
		}
		for j := range r.Results {
			// Bit-exact, including -0.0.
			if got.Results[j].Price != r.Results[j].Price {
				t.Fatalf("case %d result %d: %v vs %v", i, j, got.Results[j].Price, r.Results[j].Price)
			}
		}
	}
}

func TestColumnarResponseValidation(t *testing.T) {
	frame, err := AppendColumnarResponse(nil, &PriceResponse{
		Results: []Result{{Price: 1}}, Method: "closed-form", Engine: "scalar",
	})
	if err != nil {
		t.Fatal(err)
	}
	if ValidColumnarResponse(frame[:len(frame)-1]) {
		t.Error("accepted truncated frame")
	}
	bad := append([]byte{}, frame...)
	bad[5] = 99
	if ValidColumnarResponse(bad) {
		t.Error("accepted unknown method byte")
	}
	if _, err := DecodeColumnarResponse(bad); err == nil {
		t.Error("decoded unknown method byte")
	}
	if _, err := AppendColumnarResponse(nil, &PriceResponse{Method: "nope", Engine: "scalar"}); err == nil {
		t.Error("encoded unknown method")
	}
}

func TestSniffColumnar(t *testing.T) {
	frame := AppendColumnarRequest(nil, &PriceRequest{
		Columnar:   &Columns{Spots: []float64{100}, Strikes: []float64{105}, Expiries: []float64{0.5}},
		DeadlineMS: 750,
	})
	if !SniffColumnar(frame) {
		t.Error("SniffColumnar missed a columnar frame")
	}
	if SniffColumnar([]byte(`{"options":[]}`)) {
		t.Error("SniffColumnar matched JSON")
	}
	dl, ok := SniffColumnarDeadline(frame)
	if !ok || dl != 750 {
		t.Errorf("SniffColumnarDeadline = %d, %v", dl, ok)
	}
	if _, ok := SniffColumnarDeadline(frame[:8]); ok {
		t.Error("sniffed deadline from a truncated header")
	}
}

func TestDecodeColumnarAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	req := &PriceRequest{
		Columnar: &Columns{
			Spots:    make([]float64, 64),
			Strikes:  make([]float64, 64),
			Expiries: make([]float64, 64),
		},
	}
	for i := 0; i < 64; i++ {
		req.Columnar.Spots[i] = 100 + float64(i)
		req.Columnar.Strikes[i] = 105
		req.Columnar.Expiries[i] = 0.5
	}
	frame := AppendColumnarRequest(nil, req)
	for i := 0; i < 8; i++ {
		r, _, err := DecodeColumnarRequest(frame)
		if err != nil {
			t.Fatal(err)
		}
		PutRequest(r)
	}
	allocs := testing.AllocsPerRun(500, func() {
		r, _, err := DecodeColumnarRequest(frame)
		if err != nil {
			t.Fatal(err)
		}
		PutRequest(r)
	})
	// No type/style columns: the pure-float frame decodes with zero
	// allocations in steady state.
	if allocs != 0 {
		t.Errorf("DecodeColumnarRequest allocates %.1f/op; want 0", allocs)
	}
}

func FuzzDecodeColumnar(f *testing.F) {
	f.Add(AppendColumnarRequest(nil, &PriceRequest{
		Columnar: &Columns{Spots: []float64{100}, Strikes: []float64{105}, Expiries: []float64{0.5}},
	}))
	f.Add(AppendColumnarRequest(nil, &PriceRequest{
		Columnar: &Columns{
			Spots: []float64{100, 90}, Strikes: []float64{105, 95},
			Expiries: []float64{0.5, 1}, Types: "cp", Styles: "ee",
		},
		DeadlineMS: 100,
	}))
	f.Add([]byte("FBC1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, method, err := DecodeColumnarRequest(data)
		if err != nil {
			return
		}
		defer PutRequest(req)
		// Any accepted frame is closed-form, carries validated columns,
		// and round-trips byte-identically.
		if method != finbench.ClosedForm {
			t.Fatalf("accepted method %v", method)
		}
		n := req.NumOptions()
		if n == 0 || n > MaxRequestOptions {
			t.Fatalf("accepted %d options", n)
		}
		again := AppendColumnarRequest(nil, req)
		if !bytes.Equal(again, data) {
			t.Fatalf("round trip diverges:\n in:  %x\n out: %x", data, again)
		}
	})
}
