package fault

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"time"
)

// Errors the Transport synthesizes. They deliberately read like the real
// net errors so log triage looks the same for injected and organic faults.
var (
	// ErrRefused stands in for a dial to a dead replica.
	ErrRefused = errors.New("fault: connection refused")
	// ErrReset stands in for a connection killed mid-response.
	ErrReset = errors.New("fault: connection reset by peer")
)

// Transport wraps an http.RoundTripper with the same seed-driven decision
// stream the listener uses, but on the client side: the router unit tests
// front httptest servers with it instead of real crashed processes. One
// decision is consumed per round trip.
type Transport struct {
	// Base performs real round trips (http.DefaultTransport when nil).
	Base http.RoundTripper
	// Inj supplies decisions; nil injects nothing.
	Inj *Injector
}

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.Inj == nil {
		return t.base().RoundTrip(req)
	}
	switch t.Inj.NextDecision() {
	case KindRefuse:
		// The request never leaves the client: provably unexecuted.
		if req.Body != nil {
			_ = req.Body.Close()
		}
		return nil, ErrRefused
	case KindReset:
		// The request executes but the response is lost.
		resp, err := t.base().RoundTrip(req)
		if err != nil {
			return nil, err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		return nil, ErrReset
	case KindTruncate:
		resp, err := t.base().RoundTrip(req)
		if err != nil {
			return nil, err
		}
		body, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		cut := t.Inj.spec.TruncateAfter
		if cut > len(body) {
			cut = len(body)
		}
		resp.Body = io.NopCloser(bytes.NewReader(body[:cut]))
		return resp, nil
	case KindLatency:
		time.Sleep(t.Inj.spec.Latency)
		return t.base().RoundTrip(req)
	case KindLimp:
		resp, err := t.base().RoundTrip(req)
		time.Sleep(t.Inj.spec.LimpDelay)
		return resp, err
	default:
		return t.base().RoundTrip(req)
	}
}
