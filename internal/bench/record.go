package bench

import (
	"fmt"

	"finbench/internal/benchreg"
	"finbench/internal/parallel"
)

// Collect runs every registered experiment's Measure mode (or just the
// one named by only) at the given scale under the given sampling options
// and assembles a benchreg Snapshot: one record per measured kernel row,
// plus each experiment's best-optimized op mix. CreatedAt and Mode are
// left for the caller (cmd/benchreg) to stamp.
//
// The sampling options are installed in the package-level Sampling hook
// for the duration of the run (and restored after), because the Measure
// closures reach timeIt through it; Collect is therefore not safe for
// concurrent use — snapshotting is a whole-process activity anyway, since
// a co-running benchmark would corrupt the timings it exists to record.
func Collect(scale float64, opts benchreg.Opts, only string) (*benchreg.Snapshot, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("bench: scale %g outside (0,1]", scale)
	}
	prev := Sampling
	Sampling = opts
	defer func() { Sampling = prev }()

	snap := &benchreg.Snapshot{
		Schema:         benchreg.SchemaVersion,
		Scale:          scale,
		Opts:           opts,
		Env:            benchreg.Fingerprint(),
		CalibOpsPerSec: benchreg.Calibrate(opts),
		Mixes:          map[string]map[string]uint64{},
	}
	schedBefore := parallel.Sched()
	matched := false
	for _, e := range Experiments() {
		if only != "" && only != "all" && e.ID != only {
			continue
		}
		matched = true
		if e.Measure != nil {
			res, err := e.Measure(scale)
			if err != nil {
				return nil, fmt.Errorf("bench: %s measure: %w", e.ID, err)
			}
			for _, row := range res.Rows {
				if row.HostReps == 0 {
					continue
				}
				snap.Kernels = append(snap.Kernels, benchreg.Record{
					Experiment:  e.ID,
					Label:       row.Label,
					Units:       res.Units,
					Items:       row.HostItems,
					Reps:        row.HostReps,
					MedianSec:   secPerCall(row),
					MADSec:      secMAD(row),
					OpsPerSec:   row.Host,
					OpsMAD:      row.HostMAD,
					AllocsPerOp: row.HostAllocs,
					GateAllocs:  row.GateAllocs,
				})
			}
		}
		if e.Mix != nil {
			c, err := e.Mix(scale)
			if err != nil {
				return nil, fmt.Errorf("bench: %s mix: %w", e.ID, err)
			}
			snap.Mixes[e.ID] = c.Map()
		}
	}
	if !matched {
		return nil, fmt.Errorf("bench: no experiment matches %q", only)
	}
	if len(snap.Kernels) == 0 {
		return nil, fmt.Errorf("bench: no measurable kernels selected (experiment %q has no Measure mode)", only)
	}
	// Record how the pool scheduled the run: the counter delta attributes
	// the snapshot's timings to actual fork-join behavior (serial fast
	// paths vs dispatched tasks, handoffs vs helping-join steals).
	snap.Sched = parallel.Sched().Delta(schedBefore).Map()
	return snap, nil
}

// secPerCall recovers the median wall seconds per kernel invocation from
// a host row (throughput = items/sec).
func secPerCall(row Row) float64 {
	if row.Host <= 0 {
		return 0
	}
	return float64(row.HostItems) / row.Host
}

// secMAD propagates the throughput MAD back to seconds to first order.
func secMAD(row Row) float64 {
	if row.Host <= 0 {
		return 0
	}
	return secPerCall(row) * row.HostMAD / row.Host
}
