#!/usr/bin/env bash
# scripts/check.sh — the repo's full verification gate.
#
# Runs, in order: go vet, go build, the tier-1 test suite, the race
# detector over the concurrency-heavy packages, the fuzz seed corpora,
# and finlint (cmd/finlint), the custom static-analysis suite that
# enforces the kernel-safety invariants (see README "Static analysis &
# CI gate"). Finishes with a self-test that finlint still rejects the
# seeded violations under internal/lint/testdata/.
#
# Usage: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> tier-1: go test ./..."
go test ./...

echo "==> race detector on concurrency-heavy packages"
go test -race -count=1 \
	./internal/parallel \
	./internal/montecarlo \
	./internal/brownian \
	./internal/rng \
	./internal/bench

echo "==> fuzz seed corpora"
go test -run='^Fuzz' -count=1 ./internal/mathx ./internal/rng ./internal/blackscholes

echo "==> finlint ./..."
go run ./cmd/finlint ./...

echo "==> finlint self-test: seeded violations must be rejected"
if go run ./cmd/finlint ./internal/lint/testdata/... >/dev/null 2>&1; then
	echo "error: finlint exited 0 on internal/lint/testdata/ seeded violations" >&2
	exit 1
fi

echo "check.sh: all gates passed"
