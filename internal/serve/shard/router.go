// Package shard is the fault-tolerant replica router of the serving
// tier: it fronts N finserve backends, health-checks them through GET
// /healthz, scores them least-loaded (router-side in-flight plus the
// backend's reported work units and admission-queue depth), and guards
// each with a circuit breaker. Failed attempts fail over to a different
// replica with the dead one excluded for the rest of the request;
// optional hedging races a second replica after a delay for tail
// latency.
//
// The PR 4 bit-reproducibility invariant survives routing: every 200
// the router forwards is byte-for-byte what one backend produced, and
// backends answer identically for identical effective configs, so a
// routed 200 is bit-identical to a single-process answer. The one
// method whose answers are decomposition-dependent — Monte Carlo — is
// never retried or hedged: it gets exactly one attempt, and any failure
// surfaces to the client rather than risking a second, differently
// seeded execution being presented as the first.
//
// A 200 whose body is not valid JSON (a truncating fault, a dying
// replica) is treated as a replica failure and failed over — the router
// never forwards a corrupt 200.
package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"finbench/internal/resilience"
	"finbench/internal/serve"
	"finbench/internal/serve/pricecache"
	"finbench/internal/serve/wire"
)

// maxProxyBody bounds request and response bodies the router will carry
// (matches the backend's own request-body cap).
const maxProxyBody = 64 << 20

// Config tunes a Router; zero values select the defaults.
type Config struct {
	// Backends are the replica base URLs (e.g. http://127.0.0.1:9101).
	Backends []string

	// HealthInterval is the health-check period (default 100ms);
	// HealthTimeout bounds one probe (default 250ms).
	HealthInterval time.Duration
	HealthTimeout  time.Duration

	// MaxAttempts bounds attempts per request, first try included
	// (default 3). Monte Carlo requests always get exactly one.
	MaxAttempts int

	// HedgeDelay launches a second attempt on another replica when the
	// first has not answered within this delay; 0 disables hedging.
	// Monte Carlo is never hedged.
	HedgeDelay time.Duration

	// Backoff shapes the retry delays. Breaker tunes the per-replica
	// circuit breakers.
	Backoff resilience.Backoff
	Breaker resilience.BreakerConfig

	// BudgetRatio/BudgetCap configure the global retry budget (tokens
	// earned per request / token cap; defaults 0.2 and 50). A negative
	// ratio disables the budget.
	BudgetRatio float64
	BudgetCap   float64

	// Transport overrides the backend round-tripper (tests inject
	// faults here); nil means http.DefaultTransport.
	Transport http.RoundTripper

	// CacheBytes enables a router-level content-addressed response cache
	// with that byte budget (0 disables); CacheTTL expires entries (0 =
	// never). The router cannot resolve effective configs, so it keys
	// purely on request content — correct only because the fleet is
	// homogeneous (every replica shares the market and config defaults,
	// which `finserve route`'s supervisor guarantees by spawning
	// identical children). Only closed-form /price requests are cached;
	// degraded 200s are never stored.
	CacheBytes int64
	CacheTTL   time.Duration

	// StreamWriteTimeout bounds one SSE frame write to a /stream client;
	// a client that cannot absorb a frame within it is disconnected.
	// Default 2s.
	StreamWriteTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.HealthInterval <= 0 {
		c.HealthInterval = 100 * time.Millisecond
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 250 * time.Millisecond
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.Transport == nil {
		c.Transport = http.DefaultTransport
	}
	if c.StreamWriteTimeout <= 0 {
		c.StreamWriteTimeout = 2 * time.Second
	}
	return c
}

// replica is one backend and its router-side view.
type replica struct {
	url     string
	breaker *resilience.Breaker

	healthy  atomic.Bool
	draining atomic.Bool
	// loadUnits is the backend-reported load signal: in-flight work
	// units plus a large penalty per queued request (a non-empty
	// admission queue means the replica is saturated).
	loadUnits atomic.Int64
	// inflight counts requests this router currently has outstanding on
	// the replica — the freshest load signal between health sweeps.
	inflight atomic.Int64
	served   atomic.Uint64
}

// routable reports whether the replica should receive new requests.
func (rep *replica) routable() bool {
	return rep.healthy.Load() && !rep.draining.Load() &&
		rep.breaker.State() != resilience.Open
}

// Router fronts a set of replicas. Build with New, then Start the
// health loop; Close stops it.
type Router struct {
	cfg      Config
	replicas []*replica
	client   *http.Client
	budget   *resilience.Budget
	cache    *pricecache.Cache // nil when caching is disabled
	start    time.Time

	requests     atomic.Uint64
	retries      atomic.Uint64
	failovers    atomic.Uint64
	hedges       atomic.Uint64
	hedgeWins    atomic.Uint64
	noReplica    atomic.Uint64
	corrupt      atomic.Uint64
	healthSweeps atomic.Uint64

	// scenarioRequests counts /scenario requests; scenarioScattered the
	// subset split across replicas; scenarioPartitionsSent the sub-range
	// dispatches those splits produced.
	scenarioRequests       atomic.Uint64
	scenarioScattered      atomic.Uint64
	scenarioPartitionsSent atomic.Uint64

	// streamRequests counts /stream subscriptions; streamPartitions the
	// per-replica partition streams they opened; streamResubscribes the
	// failover re-subscriptions after an established upstream stream
	// ended; streamSlowDrops the clients disconnected for overflowing the
	// merged frame queue.
	streamRequests     atomic.Uint64
	streamPartitions   atomic.Uint64
	streamResubscribes atomic.Uint64
	streamSlowDrops    atomic.Uint64

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// New builds a router over cfg.Backends. It does not start the health
// loop; replicas begin optimistically healthy so routing works before
// the first sweep.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("shard: no backends configured")
	}
	r := &Router{
		cfg:    cfg,
		client: &http.Client{Transport: cfg.Transport},
		start:  time.Now(),
		stop:   make(chan struct{}),
	}
	if cfg.BudgetRatio >= 0 {
		r.budget = resilience.NewBudget(cfg.BudgetRatio, cfg.BudgetCap)
	}
	if cfg.CacheBytes > 0 {
		r.cache = pricecache.New(cfg.CacheBytes, cfg.CacheTTL)
	}
	for _, u := range cfg.Backends {
		rep := &replica{url: u, breaker: resilience.NewBreaker(cfg.Breaker)}
		rep.healthy.Store(true)
		r.replicas = append(r.replicas, rep)
	}
	return r, nil
}

// Start runs one synchronous health sweep (so obviously-dead replicas
// are excluded from the first request) and launches the periodic loop.
func (r *Router) Start() {
	r.checkAll()
	r.wg.Add(1)
	go r.healthLoop()
}

// Close stops the health loop.
func (r *Router) Close() {
	r.once.Do(func() { close(r.stop) })
	r.wg.Wait()
}

// ServeHTTP implements http.Handler: /price and /greeks are routed to
// replicas; /scenario is scatter-gathered across them (see scenario.go);
// /stream is partitioned across them and re-multiplexed (see stream.go);
// /statsz and /healthz report the router's own state.
func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	switch req.URL.Path {
	case "/price", "/greeks":
		r.route(w, req)
	case "/scenario":
		r.routeScenario(w, req)
	case "/stream":
		r.routeStream(w, req)
	case "/statsz":
		r.handleStatsz(w, req)
	case "/healthz":
		r.handleHealthz(w, req)
	default:
		writeError(w, http.StatusNotFound, "no such endpoint")
	}
}

// reqState is the per-request routing state shared by retry attempts
// and concurrent hedge legs.
type reqState struct {
	mu       sync.Mutex
	excluded map[*replica]bool // failed this request; never re-picked
	inUse    map[*replica]int  // attempts currently running (hedge diversity)
	attempts atomic.Int32
}

// backendResult is one backend response, fully read.
type backendResult struct {
	status     int
	body       []byte
	contentTyp string
	retryAfter string
	cacheOut   string // replica-tier X-Finserve-Cache, forwarded as-is
	rep        *replica
}

// httpFailure carries a retryable backend response (503 shed/drain,
// 429, 5xx, corrupt 200) through the retry machinery so the last one
// can still be passed through when every attempt fails the same way.
type httpFailure struct {
	res *backendResult
}

func (e *httpFailure) Error() string {
	return fmt.Sprintf("replica %s answered %d", e.res.rep.url, e.res.status)
}

var errNoReplica = errors.New("no routable replica")

// route proxies one pricing request with retry, failover and optional
// hedging; cacheable closed-form /price requests go through the
// router-level content cache first.
func (r *Router) route(w http.ResponseWriter, req *http.Request) {
	r.requests.Add(1)
	body, err := io.ReadAll(io.LimitReader(req.Body, maxProxyBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}

	// The backend switches framing on Content-Type; anything but the
	// columnar frame type forwards as JSON (the legacy behavior).
	ctype := "application/json"
	if req.Header.Get("Content-Type") == wire.ColumnarContentType {
		ctype = wire.ColumnarContentType
	}

	// Sniff the method and deadline. A body that does not decode is
	// still forwarded (the backend owns validation and answers 400).
	// Columnar frames are closed-form by construction and carry their
	// deadline in the header.
	var monteCarlo bool
	var deadlineMS int64
	if ctype == wire.ColumnarContentType {
		deadlineMS, _ = wire.SniffColumnarDeadline(body)
	} else {
		var sniff struct {
			Method     string `json:"method"`
			DeadlineMS int64  `json:"deadline_ms"`
		}
		_ = json.Unmarshal(body, &sniff)
		monteCarlo = sniff.Method == "monte-carlo"
		deadlineMS = sniff.DeadlineMS
	}

	ctx := req.Context()
	if deadlineMS > 0 {
		// The deadline travels in the body and the backend enforces it;
		// mirroring it here bounds retries and backoff waits too. It is
		// established before any cache wait, so a waiter parked on a
		// slow singleflight leader still honors its own deadline.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(deadlineMS)*time.Millisecond)
		defer cancel()
	}

	if r.cache != nil && req.URL.Path == "/price" && ctype != wire.ColumnarContentType {
		if key, ok := routerCacheKey(body); ok {
			r.routeCached(ctx, w, req.Method, body, key)
			return
		}
		w.Header().Set(pricecache.Header, "bypass")
	}

	res, err := r.dispatch(ctx, req.Method, req.URL.Path, ctype, body, monteCarlo)
	if err != nil {
		r.writeRouteError(w, err, res)
		return
	}
	r.passThrough(w, res.final, res.st, res.hedgeWon, res.retries)
}

// routeResult is one full routed exchange: the response to forward plus
// the per-request routing state the response headers are built from.
type routeResult struct {
	final    *backendResult
	st       *reqState
	hedgeWon bool
	retries  int // sequential retries only; hedge legs are not retries
}

// dispatch runs the retry/failover/hedge machinery for one request and
// returns the response to forward. On error, result.final carries the
// last retryable backend response when there was one (so the caller can
// still pass it through).
func (r *Router) dispatch(ctx context.Context, method, path, ctype string, body []byte, monteCarlo bool) (*routeResult, error) {
	// Monte Carlo answers depend on the batch decomposition, so a
	// second execution is not "the same answer, again" — it gets
	// exactly one attempt and no hedge.
	attempts := r.cfg.MaxAttempts
	hedgeN := 1
	if monteCarlo {
		attempts = 1
	} else if r.cfg.HedgeDelay > 0 && len(r.replicas) > 1 {
		hedgeN = 2
	}

	out := &routeResult{st: &reqState{
		excluded: make(map[*replica]bool),
		inUse:    make(map[*replica]int),
	}}
	err := resilience.Retry(ctx, attempts, r.cfg.Backoff, r.budget, func(ctx context.Context, attempt int) error {
		if attempt > 0 {
			out.retries++
			r.retries.Add(1)
			out.st.mu.Lock()
			failedOver := len(out.st.excluded) > 0
			out.st.mu.Unlock()
			if failedOver {
				r.failovers.Add(1)
			}
		}
		res, idx, err := resilience.Hedge(ctx, r.cfg.HedgeDelay, hedgeN, func(hctx context.Context, h int) (*backendResult, error) {
			if h > 0 {
				r.hedges.Add(1)
			}
			return r.attemptOnce(hctx, method, path, ctype, body, out.st)
		})
		if err != nil {
			var hf *httpFailure
			if errors.As(err, &hf) {
				out.final = hf.res
			}
			return err
		}
		if idx > 0 {
			r.hedgeWins.Add(1)
			out.hedgeWon = true
		}
		out.final = res
		return nil
	})
	return out, err
}

// writeRouteError maps a dispatch failure onto the client response.
func (r *Router) writeRouteError(w http.ResponseWriter, err error, res *routeResult) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusRequestTimeout, "routing deadline exceeded")
	case errors.Is(err, errNoReplica):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "no routable replica")
	case errors.Is(err, context.Canceled):
		// Client went away; nothing useful to write.
	default:
		var hf *httpFailure
		if errors.As(err, &hf) && res != nil && res.final != nil {
			r.passThrough(w, res.final, res.st, res.hedgeWon, res.retries)
			return
		}
		writeError(w, http.StatusBadGateway, "replica unreachable: "+err.Error())
	}
}

// errUncacheable marks a leader exchange whose response must not be
// shared: non-200, or a degraded 200. The response belongs to the
// request that provoked it; waiters re-dispatch their own exchange.
var errUncacheable = errors.New("response not cacheable")

// routeCached serves a closed-form /price request through the router
// cache: hits and collapsed waiters are answered from stored replica
// bytes without touching a backend; a miss routes normally as the
// singleflight leader and stores its 200. The routed-200s-bit-identical
// invariant makes the stored bytes exactly what any replica would
// answer, so a hit is indistinguishable from a fresh route.
func (r *Router) routeCached(ctx context.Context, w http.ResponseWriter, method string, body []byte, key pricecache.Key) {
	var lead *routeResult
	respBody, outcome, err := r.cache.Do(ctx, key, func(ctx context.Context) ([]byte, bool, error) {
		res, err := r.dispatch(ctx, method, "/price", "application/json", body, false)
		lead = res
		if err != nil {
			return nil, false, err
		}
		if res.final.status != http.StatusOK || !cacheable200(res.final.body) {
			return res.final.body, false, errUncacheable
		}
		return res.final.body, true, nil
	})
	switch {
	case err == nil && outcome == pricecache.Miss:
		// Leader with a cacheable 200: forward with full routing headers.
		w.Header().Set(pricecache.Header, outcome.String())
		r.passThrough(w, lead.final, lead.st, lead.hedgeWon, lead.retries)
	case err == nil:
		// Hit or collapsed: served from the cache; no replica involved,
		// so no routing headers.
		w.Header().Set(pricecache.Header, outcome.String())
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(respBody)
	case errors.Is(err, errUncacheable):
		// This caller led and got a non-shareable answer: forward it as
		// the plain path would have.
		w.Header().Set(pricecache.Header, "miss")
		r.passThrough(w, lead.final, lead.st, lead.hedgeWon, lead.retries)
	default:
		r.writeRouteError(w, err, lead)
	}
}

// routerCacheKey canonicalizes a /price body into a content address, or
// reports it non-cacheable. The router keys on the request as sent
// (market and config resolution happen on the replicas; fleet
// homogeneity — see Config.CacheBytes — makes every replica's answer
// identical for identical requests). Only closed-form is cacheable: the
// same composition-independence rule as the replica tier.
func routerCacheKey(body []byte) (pricecache.Key, bool) {
	req, _, err := serve.DecodeRequest(body)
	if err != nil {
		return pricecache.Key{}, false
	}
	defer serve.PutRequest(req)
	// Columnar bodies bypass: their 200 bytes are not the cached JSON.
	if (req.Method != "" && req.Method != "closed-form") || req.Columnar != nil {
		return pricecache.Key{}, false
	}
	contracts := make([]pricecache.Contract, len(req.Options))
	for i := range req.Options {
		o := &req.Options[i]
		contracts[i] = pricecache.Contract{
			Type: o.Type, Style: o.Style,
			Spot: o.Spot, Strike: o.Strike, Expiry: o.Expiry,
		}
	}
	return pricecache.Digest("closed-form", 0, 0, pricecache.Params{
		BinomialSteps: req.Config.BinomialSteps,
		GridPoints:    req.Config.GridPoints,
		TimeSteps:     req.Config.TimeSteps,
		MCPaths:       req.Config.MCPaths,
		Seed:          req.Config.Seed,
	}, contracts), true
}

// cacheable200 rejects 200s that are not pure functions of the request:
// a degraded response reflects the serving replica's overload state, not
// the contract batch.
func cacheable200(body []byte) bool {
	var sniff struct {
		Degraded bool `json:"degraded"`
	}
	if err := json.Unmarshal(body, &sniff); err != nil {
		return false
	}
	return !sniff.Degraded
}

// passThrough forwards a backend response verbatim, plus the routing
// headers loadgen's resilience metrics are built from: Attempts counts
// every replica attempt including hedge legs, Retries only sequential
// re-attempts.
func (r *Router) passThrough(w http.ResponseWriter, res *backendResult, st *reqState, hedgeWon bool, retries int) {
	h := w.Header()
	if res.contentTyp != "" {
		h.Set("Content-Type", res.contentTyp)
	}
	if res.retryAfter != "" {
		h.Set("Retry-After", res.retryAfter)
	}
	// Forward a replica-tier cache outcome unless this router's own cache
	// already recorded one (its outcome describes the exchange the client
	// actually had).
	if res.cacheOut != "" && h.Get(pricecache.Header) == "" {
		h.Set(pricecache.Header, res.cacheOut)
	}
	h.Set("X-Finserve-Replica", res.rep.url)
	h.Set("X-Finserve-Attempts", fmt.Sprintf("%d", st.attempts.Load()))
	h.Set("X-Finserve-Retries", fmt.Sprintf("%d", retries))
	if hedgeWon {
		h.Set("X-Finserve-Hedge", "won")
	}
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// attemptOnce picks a replica, sends the request, and classifies the
// outcome: (res, nil) for responses that may be forwarded as-is (valid
// 200s and 4xx), *httpFailure for retryable statuses, a bare error for
// transport-level failures. It brackets the breaker: exactly one
// Success/Failure per admission.
func (r *Router) attemptOnce(ctx context.Context, method, path, ctype string, body []byte, st *reqState) (*backendResult, error) {
	rep := r.pick(st)
	if rep == nil {
		r.noReplica.Add(1)
		return nil, errNoReplica
	}
	st.attempts.Add(1)
	rep.inflight.Add(1)
	defer func() {
		rep.inflight.Add(-1)
		st.mu.Lock()
		st.inUse[rep]--
		st.mu.Unlock()
	}()

	hreq, err := http.NewRequestWithContext(ctx, method, rep.url+path, bytes.NewReader(body))
	if err != nil {
		rep.breaker.Success() // request construction is not the replica's fault
		return nil, resilience.Permanent(err)
	}
	hreq.Header.Set("Content-Type", ctype)

	resp, err := r.client.Do(hreq)
	if err != nil {
		return nil, r.replicaFailed(ctx, st, rep, fmt.Errorf("replica %s: %w", rep.url, err))
	}
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
	_ = resp.Body.Close() // the read error above is the signal that matters
	if err != nil {
		// Connection reset or truncated mid-body.
		return nil, r.replicaFailed(ctx, st, rep, fmt.Errorf("replica %s: reading response: %w", rep.url, err))
	}

	res := &backendResult{
		status:     resp.StatusCode,
		body:       respBody,
		contentTyp: resp.Header.Get("Content-Type"),
		retryAfter: resp.Header.Get("Retry-After"),
		cacheOut:   resp.Header.Get(pricecache.Header),
		rep:        rep,
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		valid := json.Valid(respBody)
		if res.contentTyp == wire.ColumnarContentType {
			valid = wire.ValidColumnarResponse(respBody)
		}
		if !valid {
			// A truncating fault can slip a short read past the HTTP
			// framing; never forward a corrupt 200.
			r.corrupt.Add(1)
			return nil, r.replicaFailed(ctx, st, rep, fmt.Errorf("replica %s: corrupt 200 body", rep.url))
		}
		rep.breaker.Success()
		rep.served.Add(1)
		return res, nil
	case resp.StatusCode == http.StatusServiceUnavailable || resp.StatusCode == http.StatusTooManyRequests:
		// The replica is alive and answering — shedding is load, not
		// brokenness, so the breaker records a success; but fail the
		// request over so another replica can take it.
		rep.breaker.Success()
		r.exclude(st, rep)
		return nil, &httpFailure{res: res}
	case resp.StatusCode >= 500:
		rep.breaker.Failure()
		r.exclude(st, rep)
		return nil, &httpFailure{res: res}
	default:
		// 4xx: the request itself is at fault; pass it through.
		rep.breaker.Success()
		return res, nil
	}
}

// replicaFailed records a transport-level failure against rep — unless
// the attempt was cancelled (a lost hedge race or an expired deadline
// is not evidence the replica is broken) — and excludes it from the
// rest of this request.
func (r *Router) replicaFailed(ctx context.Context, st *reqState, rep *replica, err error) error {
	if ctx.Err() != nil {
		rep.breaker.Success()
		return err
	}
	rep.breaker.Failure()
	r.exclude(st, rep)
	return err
}

func (r *Router) exclude(st *reqState, rep *replica) {
	st.mu.Lock()
	st.excluded[rep] = true
	st.mu.Unlock()
}

// pick chooses the least-loaded routable replica that the breaker
// admits. Three preference tiers: replicas this request has neither
// failed on nor is currently trying (so a hedge leg lands elsewhere),
// then untried-but-busy ones, and as a last resort a replica that
// already failed this request — a lone replica with a transient 500 is
// still worth a backoff-spaced retry, but never ahead of a live
// alternative. Returns nil when nothing is admissible.
func (r *Router) pick(st *reqState) *replica {
	st.mu.Lock()
	defer st.mu.Unlock()
	// The candidate order is decided under st.mu so concurrent hedge
	// legs see each other's choices.
	for tier := 0; tier < 3; tier++ {
		var best *replica
		var bestScore int64
		for _, rep := range r.replicas {
			if !rep.routable() {
				continue
			}
			switch tier {
			case 0:
				if st.excluded[rep] || st.inUse[rep] > 0 {
					continue
				}
			case 1:
				if st.excluded[rep] {
					continue
				}
			}
			score := rep.inflight.Load()*1_000_000 + rep.loadUnits.Load()
			if best == nil || score < bestScore {
				best, bestScore = rep, score
			}
		}
		// finlint:ignore leakcheck the Allow admitted here is settled by attemptOnce, which calls Success/Failure on every response path of the routed attempt
		if best != nil && best.breaker.Allow() {
			st.inUse[best]++
			return best
		}
		// Breaker refused the best candidate (half-open probe slots
		// exhausted, or it tripped between routable() and Allow);
		// fall through to the next tier rather than scanning again —
		// the retry loop's backoff handles the rest.
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
