package parallel

import (
	"sync/atomic"
	"testing"
)

// The small-batch benchmarks time the dispatch overhead of one parallel
// region over little work — the regime where an OpenMP runtime's
// persistent thread team beats spawn-per-call goroutines (cf. the paper's
// per-region `#pragma omp for`, Sec. III-B). Run with -cpu 1,4,8 to see
// the overhead at several worker counts.

// tinyWork simulates a cheap per-item kernel body.
func tinyWork(lo, hi int) float64 {
	var s float64
	for i := lo; i < hi; i++ {
		s += float64(i&7) * 0.5
	}
	return s
}

var benchSink atomic.Int64

func benchFor(b *testing.B, n int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		For(n, func(lo, hi int) {
			_ = tinyWork(lo, hi)
		})
	}
	benchSink.Add(1)
}

func BenchmarkForSmall64(b *testing.B)   { benchFor(b, 64) }
func BenchmarkForSmall512(b *testing.B)  { benchFor(b, 512) }
func BenchmarkForSmall4096(b *testing.B) { benchFor(b, 4096) }

func BenchmarkForDynamicSmall512(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ForDynamic(512, 16, func(lo, hi int) {
			_ = tinyWork(lo, hi)
		})
	}
	benchSink.Add(1)
}

func BenchmarkForIndexedSmall512(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ForIndexed(512, func(_, lo, hi int) {
			_ = tinyWork(lo, hi)
		})
	}
	benchSink.Add(1)
}

func BenchmarkReduceFloat64Small512(b *testing.B) {
	b.ReportAllocs()
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += ReduceFloat64(512, tinyWork)
	}
	if acc < 0 {
		b.Fatal("impossible")
	}
}
