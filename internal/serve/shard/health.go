package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"time"

	"finbench/internal/serve"
)

// maxHealthBody bounds a /healthz response; the real body is ~120
// bytes, so anything near the cap is already suspect.
const maxHealthBody = 16 << 10

// DecodeHealth parses and validates a backend /healthz body. It is the
// fuzz entry point: any input must either return an error or a response
// whose status is a known value and whose load signals are sane (no
// negatives, no non-finite uptime) — a router scoring replicas by these
// numbers must never ingest garbage from a limping backend.
func DecodeHealth(data []byte) (*serve.HealthResponse, error) {
	if len(data) > maxHealthBody {
		return nil, fmt.Errorf("healthz body %d bytes; max %d", len(data), maxHealthBody)
	}
	var h serve.HealthResponse
	if err := strictUnmarshal(data, &h); err != nil {
		return nil, err
	}
	switch h.Status {
	case "ok", "draining":
	default:
		return nil, fmt.Errorf("unknown healthz status %q", h.Status)
	}
	if h.InFlightUnits < 0 || h.MaxUnits < 0 || h.QueueDepth < 0 {
		return nil, fmt.Errorf("negative load signal in healthz")
	}
	if math.IsNaN(h.UptimeS) || math.IsInf(h.UptimeS, 0) || h.UptimeS < 0 {
		return nil, fmt.Errorf("bad uptime %v", h.UptimeS)
	}
	return &h, nil
}

// strictUnmarshal decodes JSON rejecting unknown fields and trailing
// garbage — the router and replicas ship together, so a field the
// router does not know is a corruption signal, not a version skew.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after healthz body")
	}
	return nil
}

// healthLoop re-checks every replica each HealthInterval until Close.
func (r *Router) healthLoop() {
	defer r.wg.Done()
	tick := time.NewTicker(r.cfg.HealthInterval)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
			r.checkAll()
		}
	}
}

// checkAll probes every replica concurrently (a hung replica must not
// delay the others' checks) and waits for the sweep to finish.
func (r *Router) checkAll() {
	done := make(chan struct{}, len(r.replicas))
	for _, rep := range r.replicas {
		go func(rep *replica) {
			r.checkOne(rep)
			done <- struct{}{}
		}(rep)
	}
	for range r.replicas {
		<-done
	}
	r.healthSweeps.Add(1)
}

// checkOne probes one replica's /healthz and updates its routing state.
// Health probes are deliberately outside the circuit breaker: the
// breaker measures the request path, the health loop the control path,
// and either alone can exclude a replica.
func (r *Router) checkOne(rep *replica) {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+"/healthz", nil)
	if err != nil {
		rep.healthy.Store(false)
		return
	}
	resp, err := r.client.Do(req)
	if err != nil {
		rep.healthy.Store(false)
		return
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxHealthBody+1))
	_ = resp.Body.Close() // the read error above is the signal that matters
	if err != nil {
		rep.healthy.Store(false)
		return
	}
	h, err := DecodeHealth(body)
	if err != nil {
		rep.healthy.Store(false)
		return
	}
	switch {
	case resp.StatusCode == http.StatusOK && h.Status == "ok":
		// A queued request means the replica is saturated; weigh queue
		// depth far above raw in-flight units so the scorer steers away
		// before piling on.
		rep.loadUnits.Store(h.InFlightUnits + h.QueueDepth*1_000_000)
		rep.draining.Store(false)
		rep.healthy.Store(true)
	case resp.StatusCode == http.StatusServiceUnavailable && h.Status == "draining":
		// Alive but shutting down: stop routing to it without counting
		// a crash; requests in flight there may still complete.
		rep.draining.Store(true)
		rep.healthy.Store(true)
	default:
		rep.healthy.Store(false)
	}
}
