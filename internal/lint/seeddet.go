package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// globalRandFuncs are the math/rand package-level functions backed by the
// shared, mutex-guarded global source. Using them in library code makes
// results depend on everything else the process has drawn — killing the
// reproducibility that lets kernel variants be diffed bit-for-bit — and
// serializes workers on one lock.
var globalRandFuncs = map[string]bool{
	"Seed": true, "Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "N": true, "IntN": true,
	"Int32N": true, "Int64N": true, "UintN": true, "Uint32N": true, "Uint64N": true,
}

// seedCallNames marks callees that accept a seed; time.Now() flowing into
// one of these makes every run draw a different sequence.
func isSeedCallee(name string) bool {
	return strings.Contains(name, "Seed") || strings.Contains(name, "NewSource") ||
		strings.Contains(name, "NewStream") || name == "NewMT19937"
}

// seeddetPass flags nondeterministic seeding outside cmd/: time.Now()
// flowing into a seed-accepting call, and any use of math/rand's global
// source. Binaries under cmd/ may default to a wall-clock seed for
// convenience (they surface the chosen seed to the user); libraries must
// thread an explicit seed so experiments replay exactly (the paper's
// Table II comparisons assume identical draws across variants).
func seeddetPass() *Pass {
	return &Pass{
		Name: "seeddet",
		Doc:  "nondeterministic seeding (time.Now into a seed, global math/rand) outside cmd/",
		Run:  runSeedDet,
	}
}

func runSeedDet(p *Package, report func(pos token.Pos, msg string)) {
	if isCmdPackage(p.Path) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkgPath, fn, ok := calleeStatic(p, call); ok &&
				(pkgPath == "math/rand" || pkgPath == "math/rand/v2") && globalRandFuncs[fn] {
				report(call.Pos(), fmt.Sprintf(
					"rand.%s draws from math/rand's process-global source; use an explicit rng.Stream (or rand.New with a threaded seed) so runs are reproducible", fn))
			}
			if name, ok := calleeName(call); ok && isSeedCallee(name) {
				for _, arg := range call.Args {
					if pos, found := findTimeNow(p, arg); found {
						report(pos, fmt.Sprintf(
							"time.Now() flows into seed argument of %s; thread an explicit seed parameter so runs are reproducible", name))
					}
				}
			}
			return true
		})
	}
}

// isCmdPackage reports whether the import path has a "cmd" element
// (finbench/cmd/pricer etc.), the one place wall-clock seeding is allowed.
func isCmdPackage(path string) bool {
	for _, part := range strings.Split(path, "/") {
		if part == "cmd" {
			return true
		}
	}
	return false
}

// calleeName extracts the bare function or method name of a call.
func calleeName(call *ast.CallExpr) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name, true
	case *ast.SelectorExpr:
		return fun.Sel.Name, true
	}
	return "", false
}

// findTimeNow reports the position of a time.Now() call anywhere inside
// expr (covers uint64(time.Now().UnixNano()) and friends).
func findTimeNow(p *Package, expr ast.Expr) (token.Pos, bool) {
	var pos token.Pos
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkgPath, fn, ok := calleeStatic(p, call); ok && pkgPath == "time" && fn == "Now" {
			pos, found = call.Pos(), true
			return false
		}
		return true
	})
	return pos, found
}
