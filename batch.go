package finbench

import (
	"fmt"

	"finbench/internal/blackscholes"
	"finbench/internal/layout"
	"finbench/internal/perf"
	"finbench/internal/vec"
)

// OptLevel selects the optimization level of the batch pricing engines,
// mirroring the paper's methodology (Sec. III-B).
type OptLevel int

const (
	// LevelBasic is the compiler-only reference: scalar-equivalent code
	// over AOS data.
	LevelBasic OptLevel = iota
	// LevelIntermediate applies SIMD across work items with minor code
	// changes (the F64vec8-style outer-loop vectorization).
	LevelIntermediate
	// LevelAdvanced adds the algorithmic restructurings: AOS-to-SOA
	// transposition, VML-style batching, tiling.
	LevelAdvanced
)

// String names the level.
func (l OptLevel) String() string {
	switch l {
	case LevelBasic:
		return "basic"
	case LevelIntermediate:
		return "intermediate"
	case LevelAdvanced:
		return "advanced"
	default:
		return fmt.Sprintf("finbench.OptLevel(%d)", int(l))
	}
}

// Batch is a European option batch for the high-throughput closed-form
// engine. Create one with NewBatch, fill the inputs, call PriceBatch, and
// read Calls/Puts.
type Batch struct {
	// Spots, Strikes and Expiries are the per-option inputs.
	Spots, Strikes, Expiries []float64
	// Calls and Puts receive the prices.
	Calls, Puts []float64
}

// NewBatch allocates a batch of n options.
func NewBatch(n int) *Batch {
	return &Batch{
		Spots:    make([]float64, n),
		Strikes:  make([]float64, n),
		Expiries: make([]float64, n),
		Calls:    make([]float64, n),
		Puts:     make([]float64, n),
	}
}

// Len returns the option count.
func (b *Batch) Len() int { return len(b.Spots) }

// PriceBatch prices every option in the batch with the Black-Scholes
// closed form at the given optimization level, in parallel across all
// CPUs. All three levels produce prices agreeing to ~1e-10; they differ in
// data layout and instruction mix exactly as the paper's Fig. 4 variants
// do (and as the wall-clock benchmarks demonstrate).
func PriceBatch(b *Batch, m Market, level OptLevel) error {
	if b.Len() == 0 {
		return nil
	}
	mkt := m.internal()
	switch level {
	case LevelBasic:
		aos := layout.NewAOS(b.Len())
		for i := 0; i < b.Len(); i++ {
			aos.Set(i, b.Spots[i], b.Strikes[i], b.Expiries[i])
		}
		blackscholes.Basic(aos, mkt, vec.MaxWidth, nil)
		for i := 0; i < b.Len(); i++ {
			b.Calls[i] = aos.Call(i)
			b.Puts[i] = aos.Put(i)
		}
	case LevelIntermediate, LevelAdvanced:
		soa := &layout.SOA{S: b.Spots, X: b.Strikes, T: b.Expiries, Call: b.Calls, Put: b.Puts}
		if level == LevelIntermediate {
			blackscholes.Intermediate(soa, mkt, vec.MaxWidth, nil)
		} else {
			blackscholes.Advanced(soa, mkt, vec.MaxWidth, nil)
		}
	default:
		return fmt.Errorf("finbench: unknown optimization level %v", level)
	}
	return nil
}

// OperationMix is the dynamic operation profile of a batch run, usable
// with the machine models (re-exported from internal/perf).
type OperationMix = perf.Counts

// ProfileBatch prices the batch like PriceBatch while recording the
// dynamic operation mix at the given SIMD width (4 models SNB-EP, 8 models
// KNC); used by the modelling harness and exposed for custom experiments.
func ProfileBatch(b *Batch, m Market, level OptLevel, width int) (OperationMix, error) {
	var c perf.Counts
	mkt := m.internal()
	switch level {
	case LevelBasic:
		aos := layout.NewAOS(b.Len())
		for i := 0; i < b.Len(); i++ {
			aos.Set(i, b.Spots[i], b.Strikes[i], b.Expiries[i])
		}
		blackscholes.Basic(aos, mkt, width, &c)
		// Copy the prices back so every level leaves the batch in the same
		// state (the SOA levels write through b.Calls/b.Puts directly).
		for i := 0; i < b.Len(); i++ {
			b.Calls[i] = aos.Call(i)
			b.Puts[i] = aos.Put(i)
		}
	case LevelIntermediate:
		soa := &layout.SOA{S: b.Spots, X: b.Strikes, T: b.Expiries, Call: b.Calls, Put: b.Puts}
		blackscholes.Intermediate(soa, mkt, width, &c)
	case LevelAdvanced:
		soa := &layout.SOA{S: b.Spots, X: b.Strikes, T: b.Expiries, Call: b.Calls, Put: b.Puts}
		blackscholes.Advanced(soa, mkt, width, &c)
	default:
		return c, fmt.Errorf("finbench: unknown optimization level %v", level)
	}
	return c, nil
}
