package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Call graph over the loaded packages, for the dataflow passes (ctxprop,
// detmap, leakcheck, interprocedural hotalloc).
//
// Each loaded package is type-checked independently by the source
// importer, so a function declared in package A and the same function
// seen through an import in package B are *distinct* types.Func objects.
// Nodes are therefore keyed by the stable FullName string
// ("pkg/path.Fn", "(*pkg/path.T).Method"), which both views agree on.
//
// Resolution rules (see DESIGN.md "Call graph"):
//
//   - Any reference to a declared function or concrete method inside a
//     function body becomes an edge — call position or not. Passing
//     s.handlePrice to mux.HandleFunc, or c.onTimer to time.AfterFunc,
//     links the referencing function to the handler exactly as a direct
//     call would. Function literals are attributed to the declaration
//     that lexically encloses them.
//   - A call through an interface method adds an edge to the interface
//     method itself and to that method on every module-declared type,
//     visible from the calling package, whose method set implements the
//     interface (stdlib implementers are leaves: they cannot call back
//     into the module).
//   - Calls through plain function-typed variables stay unresolved
//     (conservative): the passes instead treat every handler-shaped
//     function as a root, which covers the mux dispatch this module uses.
type CallGraph struct {
	// Funcs maps full name to declaration info for every function and
	// method declared in the loaded packages.
	Funcs map[string]*FuncInfo
	// Edges maps caller full name -> callee full name -> reference sites.
	// Callees need not be declared in the loaded packages (stdlib and
	// unloaded-module callees appear as leaf names).
	Edges map[string]map[string][]token.Pos
}

// FuncInfo is one declared function or method.
type FuncInfo struct {
	Name string // types.Func FullName
	Pkg  *Package
	Decl *ast.FuncDecl
	Obj  *types.Func
}

// funcKey is the graph key for a types.Func.
func funcKey(fn *types.Func) string { return fn.FullName() }

// BuildCallGraph constructs the graph over the loaded packages.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		Funcs: make(map[string]*FuncInfo),
		Edges: make(map[string]map[string][]token.Pos),
	}
	for _, p := range pkgs {
		named := moduleNamedTypes(p)
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := funcKey(obj)
				g.Funcs[key] = &FuncInfo{Name: key, Pkg: p, Decl: fd, Obj: obj}
				if fd.Body != nil {
					g.collectEdges(p, key, fd.Body, named)
				}
			}
		}
	}
	return g
}

// collectEdges walks body and records every function reference as an edge
// from caller.
func (g *CallGraph) collectEdges(p *Package, caller string, body *ast.BlockStmt, named []*types.Named) {
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		fn, ok := p.Info.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		g.addEdge(caller, funcKey(fn), id.Pos())
		// An interface method resolves to that method on every visible
		// module type implementing the interface.
		if recv := fn.Signature().Recv(); recv != nil && types.IsInterface(recv.Type()) {
			iface, ok := recv.Type().Underlying().(*types.Interface)
			if !ok {
				return true
			}
			for _, impl := range implementers(named, iface, fn.Name()) {
				g.addEdge(caller, impl, id.Pos())
			}
		}
		return true
	})
}

func (g *CallGraph) addEdge(caller, callee string, pos token.Pos) {
	m := g.Edges[caller]
	if m == nil {
		m = make(map[string][]token.Pos)
		g.Edges[caller] = m
	}
	m[callee] = append(m[callee], pos)
}

// moduleNamedTypes collects the named types declared in module packages
// as seen from p's type-check universe (p's own scope plus everything it
// transitively imports). Only these are candidate interface implementers:
// a type from a package p cannot see also cannot flow into p's interface
// values except through yet another interface, which stays conservative.
func moduleNamedTypes(p *Package) []*types.Named {
	var out []*types.Named
	seen := make(map[*types.Package]bool)
	var visit func(tp *types.Package)
	visit = func(tp *types.Package) {
		if tp == nil || seen[tp] {
			return
		}
		seen[tp] = true
		if isModulePkgPath(tp.Path()) {
			scope := tp.Scope()
			for _, name := range scope.Names() {
				tn, ok := scope.Lookup(name).(*types.TypeName)
				if !ok || tn.IsAlias() {
					continue
				}
				if named, ok := tn.Type().(*types.Named); ok {
					out = append(out, named)
				}
			}
		}
		for _, imp := range tp.Imports() {
			visit(imp)
		}
	}
	visit(p.Types)
	return out
}

// isModulePkgPath reports whether path belongs to this module (including
// testdata pseudo-paths, whose corpora declare their own implementers).
func isModulePkgPath(path string) bool {
	return path == rootPkgPath || strings.HasPrefix(path, rootPkgPath+"/")
}

// implementers returns the full names of method mname on each named type
// whose method set (value or pointer) implements iface.
func implementers(named []*types.Named, iface *types.Interface, mname string) []string {
	var out []string
	for _, t := range named {
		if types.IsInterface(t.Underlying()) {
			continue
		}
		var recv types.Type
		switch {
		case types.Implements(t, iface):
			recv = t
		case types.Implements(types.NewPointer(t), iface):
			recv = types.NewPointer(t)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, t.Obj().Pkg(), mname)
		if m, ok := obj.(*types.Func); ok {
			out = append(out, funcKey(m))
		}
	}
	sort.Strings(out)
	return out
}

// HTTPHandlerRoots returns the declared functions that can receive HTTP
// requests: every method named ServeHTTP and every func with the
// http.HandlerFunc shape. Mux registration is a dynamic call the graph
// does not resolve, so the signature shape *is* the root set.
func (g *CallGraph) HTTPHandlerRoots() []string {
	var roots []string
	for name, fi := range g.Funcs {
		if fi.Obj.Name() == "ServeHTTP" && fi.Obj.Signature().Recv() != nil {
			roots = append(roots, name)
			continue
		}
		if isHandlerShape(fi.Obj.Signature()) {
			roots = append(roots, name)
		}
	}
	sort.Strings(roots)
	return roots
}

// isHandlerShape reports the func(http.ResponseWriter, *http.Request)
// signature, matched by type string so it holds across independently
// type-checked packages.
func isHandlerShape(sig *types.Signature) bool {
	params := sig.Params()
	if params.Len() != 2 || sig.Results().Len() != 0 {
		return false
	}
	return types.TypeString(params.At(0).Type(), nil) == "net/http.ResponseWriter" &&
		types.TypeString(params.At(1).Type(), nil) == "*net/http.Request"
}

// ReachSet is the result of a breadth-first reachability sweep: for each
// reached function, its BFS depth and the parent it was first reached
// from (so diagnostics can show one concrete call path).
type ReachSet struct {
	Depth  map[string]int
	Parent map[string]string // roots map to ""
}

// Reach runs BFS from roots following edges; maxDepth < 0 is unbounded.
// Expansion order is sorted at every level, so first-reach parents (and
// therefore diagnostic paths) are deterministic.
func (g *CallGraph) Reach(roots []string, maxDepth int) *ReachSet {
	r := &ReachSet{Depth: make(map[string]int), Parent: make(map[string]string)}
	queue := make([]string, 0, len(roots))
	sorted := append([]string(nil), roots...)
	sort.Strings(sorted)
	for _, root := range sorted {
		if _, ok := r.Depth[root]; ok {
			continue
		}
		r.Depth[root] = 0
		r.Parent[root] = ""
		queue = append(queue, root)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		d := r.Depth[cur]
		if maxDepth >= 0 && d >= maxDepth {
			continue
		}
		for _, callee := range sortedEdgeKeys(g.Edges[cur]) {
			if _, ok := r.Depth[callee]; ok {
				continue
			}
			r.Depth[callee] = d + 1
			r.Parent[callee] = cur
			queue = append(queue, callee)
		}
	}
	return r
}

// Contains reports whether name was reached.
func (r *ReachSet) Contains(name string) bool {
	_, ok := r.Depth[name]
	return ok
}

// Path returns the call chain root -> ... -> name recorded by the sweep,
// or nil if name was not reached.
func (r *ReachSet) Path(name string) []string {
	if !r.Contains(name) {
		return nil
	}
	var rev []string
	for cur := name; cur != ""; cur = r.Parent[cur] {
		rev = append(rev, cur)
	}
	out := make([]string, len(rev))
	for i, s := range rev {
		out[len(rev)-1-i] = s
	}
	return out
}

// pathLabel renders a reach path for diagnostics, eliding long middles.
func pathLabel(path []string) string {
	short := make([]string, len(path))
	for i, s := range path {
		short[i] = shortFuncName(s)
	}
	if len(short) > 5 {
		short = append(short[:2], append([]string{"..."}, short[len(short)-2:]...)...)
	}
	return strings.Join(short, " -> ")
}

// shortFuncName trims package paths from a full name for display:
// "(*finbench/internal/serve.Server).handlePrice" -> "(*Server).handlePrice".
func shortFuncName(full string) string {
	trim := func(s string) string {
		if i := strings.LastIndex(s, "/"); i >= 0 {
			s = s[i+1:]
		}
		if i := strings.Index(s, "."); i >= 0 {
			s = s[i+1:]
		}
		return s
	}
	if rest, ok := strings.CutPrefix(full, "(*"); ok {
		if recv, method, ok := strings.Cut(rest, ")."); ok {
			return "(*" + trim(recv) + ")." + method
		}
	}
	if rest, ok := strings.CutPrefix(full, "("); ok {
		if recv, method, ok := strings.Cut(rest, ")."); ok {
			return "(" + trim(recv) + ")." + method
		}
	}
	return trim(full)
}

// sortedEdgeKeys returns the callee names of one edge map in sorted
// order (map iteration order must never reach diagnostics).
func sortedEdgeKeys(m map[string][]token.Pos) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
