// Package rng implements the random-number substrate of the benchmark: the
// Mersenne Twister generator family, parallel stream partitioning, and the
// uniform-to-normal transforms (inverse CDF, Box-Muller, ziggurat).
//
// The paper's Monte Carlo kernels use "the Intel MKL Mersenne twister (2203
// variant) as the basis for our random number generation (this is
// ultimately transformed into the appropriate normal distribution)"
// (Sec. IV-D3), and Table II reports raw uniform and normal generation
// rates. MKL's MT2203 is a family of 6024 mutually independent twisters
// produced by the dynamic-creator (dcmt) search; the dcmt parameter tables
// are not reproducible from the published paper, so this package makes the
// documented substitution (DESIGN.md Sec. 2): a generic, parameterized
// Mersenne Twister engine instantiated with the canonical MT19937
// parameters, plus a stream family that derives per-stream generators from
// independent, avalanche-scrambled seeds (SplitMix64). This preserves the
// property the kernels rely on — one statistically independent stream per
// thread, vector-width-chunked fills — with a known-answer-tested core.
package rng

// Params defines a 32-bit Mersenne Twister instance (Matsumoto & Nishimura,
// ACM TOMACS 1998): state size N, middle word M, twist split R, twist
// matrix A, and the tempering parameters U, S, B, T, C, L.
type Params struct {
	N, M int
	R    uint
	A    uint32
	U    uint
	S    uint
	B    uint32
	T    uint
	C    uint32
	L    uint
	// InitMult is the multiplier of the Knuth-style seeding recurrence
	// (1812433253 for MT19937).
	InitMult uint32
}

// MT19937Params are the canonical parameters of the 2^19937-1 period
// twister.
var MT19937Params = Params{
	N: 624, M: 397, R: 31,
	A: 0x9908B0DF,
	U: 11,
	S: 7, B: 0x9D2C5680,
	T: 15, C: 0xEFC60000,
	L:        18,
	InitMult: 1812433253,
}

// MT is a parameterized 32-bit Mersenne Twister.
type MT struct {
	p   Params
	mt  []uint32
	idx int
}

// NewMT returns a twister with the given parameters seeded by seed
// (init_genrand of the reference implementation).
func NewMT(p Params, seed uint32) *MT {
	m := &MT{p: p, mt: make([]uint32, p.N)}
	m.Seed(seed)
	return m
}

// NewMT19937 returns the canonical MT19937 generator. The reference
// implementation's default seed is 5489.
func NewMT19937(seed uint32) *MT { return NewMT(MT19937Params, seed) }

// Seed reinitializes the state from a single 32-bit seed using the
// reference init_genrand recurrence.
func (m *MT) Seed(seed uint32) {
	m.mt[0] = seed
	for i := 1; i < m.p.N; i++ {
		m.mt[i] = m.p.InitMult*(m.mt[i-1]^(m.mt[i-1]>>30)) + uint32(i)
	}
	m.idx = m.p.N
}

// SeedArray reinitializes the state from a key array, matching the
// reference init_by_array so that published test vectors apply.
func (m *MT) SeedArray(key []uint32) {
	n := m.p.N
	m.Seed(19650218)
	i, j := 1, 0
	k := n
	if len(key) > k {
		k = len(key)
	}
	for ; k > 0; k-- {
		m.mt[i] = (m.mt[i] ^ ((m.mt[i-1] ^ (m.mt[i-1] >> 30)) * 1664525)) + key[j] + uint32(j)
		i++
		j++
		if i >= n {
			m.mt[0] = m.mt[n-1]
			i = 1
		}
		if j >= len(key) {
			j = 0
		}
	}
	for k = n - 1; k > 0; k-- {
		m.mt[i] = (m.mt[i] ^ ((m.mt[i-1] ^ (m.mt[i-1] >> 30)) * 1566083941)) - uint32(i)
		i++
		if i >= n {
			m.mt[0] = m.mt[n-1]
			i = 1
		}
	}
	m.mt[0] = 0x80000000
	m.idx = n
}

// twist regenerates the state block (the O(N) step amortized over N draws).
func (m *MT) twist() {
	p := m.p
	n := p.N
	upperMask := uint32(0xFFFFFFFF) << p.R
	lowerMask := ^upperMask
	for i := 0; i < n; i++ {
		y := (m.mt[i] & upperMask) | (m.mt[(i+1)%n] & lowerMask)
		next := m.mt[(i+p.M)%n] ^ (y >> 1)
		if y&1 != 0 {
			next ^= p.A
		}
		m.mt[i] = next
	}
	m.idx = 0
}

// Uint32 returns the next tempered 32-bit output.
func (m *MT) Uint32() uint32 {
	if m.idx >= m.p.N {
		m.twist()
	}
	y := m.mt[m.idx]
	m.idx++
	y ^= y >> m.p.U
	y ^= (y << m.p.S) & m.p.B
	y ^= (y << m.p.T) & m.p.C
	y ^= y >> m.p.L
	return y
}

// Uint64 combines two 32-bit draws.
func (m *MT) Uint64() uint64 {
	hi := uint64(m.Uint32())
	lo := uint64(m.Uint32())
	return hi<<32 | lo
}

// Float64 returns a 53-bit-resolution uniform in [0,1), the reference
// genrand_res53: (a*2^26 + b) / 2^53 with a = u32>>5, b = u32>>6.
func (m *MT) Float64() float64 {
	a := m.Uint32() >> 5
	b := m.Uint32() >> 6
	return (float64(a)*67108864.0 + float64(b)) / 9007199254740992.0
}

// Float64OO returns a uniform in the open interval (0,1), as required by
// the inverse-CDF normal transform (Phi^-1 diverges at 0 and 1). It shifts
// the 53-bit lattice by half a step.
func (m *MT) Float64OO() float64 {
	a := m.Uint32() >> 5
	b := m.Uint32() >> 6
	return (float64(a)*67108864.0 + float64(b) + 0.5) / 9007199254740992.0
}

// Skip discards n 32-bit outputs. Streams partitioned by skipping are used
// when a single generator must be split deterministically (O(n); the MKL
// skip-ahead is O(log n), but no kernel here skips far).
func (m *MT) Skip(n uint64) {
	for ; n > 0; n-- {
		if m.idx >= m.p.N {
			m.twist()
		}
		m.idx++
	}
}

// splitmix64 is the avalanche scrambler used to derive independent stream
// seeds; one step of the SplitMix64 sequence.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
