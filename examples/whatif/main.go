// What-if: profile a pricing batch on this machine, then ask the paper's
// machine models what the same operation mix would achieve on the 2012
// Xeon E5-2680 and the Xeon Phi — including which side of the roofline it
// lands on, drawn as an ASCII chart.
//
//	go run ./examples/whatif
package main

import (
	"fmt"
	"log"

	"finbench"
)

func main() {
	const n = 100_000
	b := finbench.NewBatch(n)
	for i := 0; i < n; i++ {
		b.Spots[i] = 50 + float64(i%150)
		b.Strikes[i] = 50 + float64((i*13)%150)
		b.Expiries[i] = 0.1 + float64(i%40)/8
	}
	mkt := finbench.Market{Rate: 0.02, Volatility: 0.3}

	fmt.Println("Modelled Black-Scholes batch throughput by level and machine:")
	fmt.Printf("%-14s %-8s %14s %12s %10s\n", "level", "machine", "options/s", "GFLOP/s", "bound")
	points := map[string]map[string][2]float64{"SNB-EP": {}, "KNC": {}}
	for _, level := range []finbench.OptLevel{
		finbench.LevelBasic, finbench.LevelIntermediate, finbench.LevelAdvanced,
	} {
		for _, m := range finbench.Machines() {
			// Profile at the machine's SIMD width.
			mix, err := finbench.ProfileBatch(b, mkt, level, m.SIMDWidthDP)
			if err != nil {
				log.Fatal(err)
			}
			pred, err := finbench.PredictThroughput(mix, m.Name)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-14s %-8s %14.3e %12.1f %10s\n",
				level, m.Name, pred.ItemsPerSec, pred.GFLOPs, pred.Bound)
			points[m.Name][level.String()] = [2]float64{mix.ArithmeticIntensity(), pred.GFLOPs}
		}
	}
	fmt.Println()
	for _, m := range finbench.Machines() {
		chart, err := finbench.Roofline(m.Name, points[m.Name])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(chart)
	}
}
