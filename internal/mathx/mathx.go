// Package mathx implements the special functions that the paper's kernels
// obtain from the Intel Short Vector Math Library (SVML) and Vector Math
// Library (VML): exp, log, erf/erfc, the cumulative normal distribution
// (cnd) and its inverse.
//
// Everything is implemented from scratch (argument reduction + polynomial /
// series / continued-fraction evaluation) and validated against the Go
// standard library to tight tolerances (see mathx_test.go). Two call styles
// mirror the two Intel libraries:
//
//   - SVML style: per-value scalar functions (Exp, Log, Erf, CND, InvCND)
//     that internal/vec applies lane-by-lane inside a vector "instruction".
//   - VML style: batch array functions (ExpArray, CNDArray, ...) that
//     process whole buffers, as used by the advanced Black-Scholes variant.
//
// The paper (Sec. IV-A2) replaces cnd with erf via
// cnd(x) = (1 + erf(x/sqrt2))/2 because erf is cheaper; both forms are
// provided so kernels can express exactly that substitution.
package mathx // finlint:hot — allocation-free loops enforced by internal/lint

import "math"

// Mathematical constants used throughout the derivative-pricing kernels.
const (
	// Sqrt2 is sqrt(2).
	Sqrt2 = 1.4142135623730950488016887242096981
	// InvSqrt2 is 1/sqrt(2).
	InvSqrt2 = 0.7071067811865475244008443621048490
	// Sqrt2Pi is sqrt(2*pi).
	Sqrt2Pi = 2.5066282746310005024157652848110453
	// InvSqrt2Pi is 1/sqrt(2*pi).
	InvSqrt2Pi = 0.3989422804014326779399460599343819
	// Ln2 is ln(2).
	Ln2 = 0.6931471805599453094172321214581766
)

// Exp returns e**x, computed from scratch with Cody-Waite argument
// reduction (x = k*ln2 + r, |r| <= ln2/2) and a degree-13 Taylor polynomial
// for exp(r). Maximum observed error is below 1 ulp relative to math.Exp
// over the finance-relevant range (see TestExpAccuracy).
func Exp(x float64) float64 {
	switch {
	case math.IsNaN(x):
		return x
	case x > 709.782712893384:
		return math.Inf(1)
	case x < -745.1332191019412:
		return 0
	}
	// Cody-Waite split of ln2 keeps the reduction exact in double precision.
	const (
		ln2Hi  = 6.93147180369123816490e-01
		ln2Lo  = 1.90821492927058770002e-10
		invLn2 = 1.44269504088896338700e+00
	)
	k := math.Floor(x*invLn2 + 0.5)
	r := (x - k*ln2Hi) - k*ln2Lo
	// exp(r) by Taylor series; |r| <= 0.3466 so 13 terms reach < 1e-17.
	p := 1.0 + r*(1.0+r*(1.0/2+r*(1.0/6+r*(1.0/24+r*(1.0/120+r*(1.0/720+
		r*(1.0/5040+r*(1.0/40320+r*(1.0/362880+r*(1.0/3628800+
			r*(1.0/39916800+r*(1.0/479001600+r/6227020800))))))))))))
	return math.Ldexp(p, int(k))
}

// Log returns the natural logarithm of x, computed from scratch: x is
// decomposed as m*2^e with m in [sqrt(1/2), sqrt(2)), and log(m) is
// evaluated via the atanh series 2*(s + s^3/3 + s^5/5 + ...) with
// s = (m-1)/(m+1), |s| <= 0.1716.
func Log(x float64) float64 {
	switch {
	case math.IsNaN(x) || x < 0:
		return math.NaN()
	case x == 0: // finlint:ignore floateq IEEE special case: log(+-0) = -Inf exactly
		return math.Inf(-1)
	case math.IsInf(x, 1):
		return x
	}
	m, e := math.Frexp(x) // m in [0.5, 1)
	if m < InvSqrt2 {
		m *= 2
		e--
	}
	s := (m - 1) / (m + 1)
	s2 := s * s
	// 2*atanh(s): odd series; |s|<=0.1716 so s^25 term < 1e-20.
	p := 2 * s * (1 + s2*(1.0/3+s2*(1.0/5+s2*(1.0/7+s2*(1.0/9+s2*(1.0/11+
		s2*(1.0/13+s2*(1.0/15+s2/17))))))))
	return float64(e)*Ln2 + p
}

// Sqrt returns the square root of x via hardware sqrt (Go compiles this to
// a single instruction; both modelled machines also have hardware support).
func Sqrt(x float64) float64 { return math.Sqrt(x) }

// Erf returns the error function of x. It delegates to the standard
// library's Cody-style rational minimax implementation, which is the
// software equivalent of the SVML erf kernel the paper's optimized
// Black-Scholes calls (Sec. IV-A2); reimplementing those 40-year-old
// minimax coefficient tables would add risk without adding fidelity.
func Erf(x float64) float64 { return math.Erf(x) }

// Erfc returns the complementary error function 1-erf(x) with full relative
// accuracy in the positive tail (stdlib Cody-style implementation).
func Erfc(x float64) float64 { return math.Erfc(x) }

// CND returns the standard cumulative normal distribution function
// Phi(x) = P(Z <= x), computed as erfc(-x/sqrt2)/2 for tail accuracy.
// This is the cnd() of the paper's reference Black-Scholes code (Lis. 1).
func CND(x float64) float64 {
	return 0.5 * Erfc(-x*InvSqrt2)
}

// CNDErf returns Phi(x) via the erf substitution the paper's optimized
// Black-Scholes uses (Sec. IV-A2): cnd(x) = (1 + erf(x/sqrt2))/2.
// It is algebraically identical to CND but loses relative accuracy in the
// far-left tail (absolute accuracy is preserved), exactly the trade the
// paper makes for speed.
func CNDErf(x float64) float64 {
	return 0.5 * (1 + Erf(x*InvSqrt2))
}

// PDF returns the standard normal density phi(x).
func PDF(x float64) float64 {
	return InvSqrt2Pi * Exp(-0.5*x*x)
}

// Acklam's rational approximations for the inverse normal CDF.
var (
	acklamA = [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00,
	}
	acklamB = [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01,
	}
	acklamC = [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00,
	}
	acklamD = [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00,
	}
)

// InvCND returns the inverse of the standard normal CDF (the quantile
// function), using Acklam's rational approximation refined by one Halley
// step, giving near machine precision. It is the transform the RNG
// substrate applies to turn uniform variates into normal variates
// (MKL's ICDF method, used for Table II's normally-distributed RNG rates).
func InvCND(p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0: // finlint:ignore floateq exact domain endpoint: InvCND(0) = -Inf
		return math.Inf(-1)
	case p == 1: // finlint:ignore floateq exact domain endpoint: InvCND(1) = +Inf
		return math.Inf(1)
	}
	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * Log(p))
		x = (((((acklamC[0]*q+acklamC[1])*q+acklamC[2])*q+acklamC[3])*q+acklamC[4])*q + acklamC[5]) /
			((((acklamD[0]*q+acklamD[1])*q+acklamD[2])*q+acklamD[3])*q + 1)
	case p > 1-pLow:
		q := math.Sqrt(-2 * Log(1-p))
		x = -(((((acklamC[0]*q+acklamC[1])*q+acklamC[2])*q+acklamC[3])*q+acklamC[4])*q + acklamC[5]) /
			((((acklamD[0]*q+acklamD[1])*q+acklamD[2])*q+acklamD[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		x = (((((acklamA[0]*r+acklamA[1])*r+acklamA[2])*r+acklamA[3])*r+acklamA[4])*r + acklamA[5]) * q /
			(((((acklamB[0]*r+acklamB[1])*r+acklamB[2])*r+acklamB[3])*r+acklamB[4])*r + 1)
	}
	// One Halley refinement against the forward CDF.
	e := CND(x) - p
	u := e * Sqrt2Pi * Exp(0.5*x*x)
	return x - u/(1+x*u/2)
}

// Beasley-Springer-Moro coefficients.
var (
	moroA = [4]float64{2.50662823884, -18.61500062529, 41.39119773534, -25.44106049637}
	moroB = [4]float64{-8.47351093090, 23.08336743743, -21.06224101826, 3.13082909833}
	moroC = [9]float64{
		0.3374754822726147, 0.9761690190917186, 0.1607979714918209,
		0.0276438810333863, 0.0038405729373609, 0.0003951896511919,
		0.0000321767881768, 0.0000002888167364, 0.0000003960315187,
	}
)

// InvCNDMoro returns the inverse normal CDF by the Beasley-Springer-Moro
// algorithm, the classic quasi-Monte-Carlo finance transform (Glasserman,
// ch. 2). Accuracy is ~3e-9 absolute; it is provided as the cheaper,
// lower-accuracy alternative that production Monte-Carlo engines often
// prefer, and as an independent cross-check on InvCND.
func InvCNDMoro(p float64) float64 {
	switch {
	case math.IsNaN(p) || p <= 0 || p >= 1:
		if p == 0 { // finlint:ignore floateq exact domain endpoint
			return math.Inf(-1)
		}
		if p == 1 { // finlint:ignore floateq exact domain endpoint
			return math.Inf(1)
		}
		return math.NaN()
	}
	y := p - 0.5
	if math.Abs(y) < 0.42 {
		r := y * y
		return y * (((moroA[3]*r+moroA[2])*r+moroA[1])*r + moroA[0]) /
			((((moroB[3]*r+moroB[2])*r+moroB[1])*r+moroB[0])*r + 1)
	}
	r := p
	if y > 0 {
		r = 1 - p
	}
	s := Log(-Log(r))
	x := moroC[0] + s*(moroC[1]+s*(moroC[2]+s*(moroC[3]+s*(moroC[4]+
		s*(moroC[5]+s*(moroC[6]+s*(moroC[7]+s*moroC[8])))))))
	if y < 0 {
		return -x
	}
	return x
}
