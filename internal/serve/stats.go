package serve

import (
	"math/bits"
	"sync/atomic"
	"time"

	"finbench/internal/parallel"
	"finbench/internal/serve/pricecache"
	"finbench/internal/serve/stream"
)

// Observability. /statsz reports everything an operator needs to see the
// serving pipeline working: request/status counts, shed and degrade
// counters, per-method latency quantiles from lock-free exponential
// histograms, coalescer efficiency, the parallel pool's scheduler
// counters (cumulative — clients diff consecutive reads for deltas), and
// a sampled dynamic operation mix of the batch engine.

// histBuckets spans 1us..2^40us (~12 days) in powers of two.
const histBuckets = 41

// hist is a lock-free exponential latency histogram (microsecond base).
type hist struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sumUS   atomic.Uint64
}

func (h *hist) observe(d time.Duration) {
	us := uint64(d.Microseconds())
	b := bits.Len64(us) // 0us -> bucket 0, 1us -> 1, 2-3us -> 2, ...
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sumUS.Add(us)
}

// quantile returns an upper bound (bucket ceiling, in microseconds) for
// the q-quantile of observed latencies; 0 when empty.
func (h *hist) quantile(q float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var seen uint64
	for b := 0; b < histBuckets; b++ {
		seen += h.buckets[b].Load()
		if seen > target {
			if b == 0 {
				return 0
			}
			return 1<<uint(b) - 1 // ceiling of the bucket's range
		}
	}
	return 1<<uint(histBuckets-1) - 1
}

// histJSON is the wire form of one histogram.
type histJSON struct {
	Count  uint64 `json:"count"`
	MeanUS uint64 `json:"mean_us"`
	P50US  uint64 `json:"p50_us"`
	P90US  uint64 `json:"p90_us"`
	P99US  uint64 `json:"p99_us"`
}

func (h *hist) snapshot() histJSON {
	var out histJSON
	out.Count = h.count.Load()
	if out.Count > 0 {
		out.MeanUS = h.sumUS.Load() / out.Count
	}
	out.P50US = h.quantile(0.50)
	out.P90US = h.quantile(0.90)
	out.P99US = h.quantile(0.99)
	return out
}

// latencyMethods are the histogram keys (pricing methods plus greeks).
var latencyMethods = []string{
	"closed-form", "binomial-tree", "crank-nicolson",
	"monte-carlo", "trinomial-tree", "greeks", "scenario",
}

// stats aggregates server-wide counters.
type stats struct {
	start time.Time

	priceRequests  atomic.Uint64
	greeksRequests atomic.Uint64
	// scenarioRequests counts /scenario requests; scenarioCells counts
	// scenario cells evaluated by successful responses (sub-range
	// requests count only their own cells).
	scenarioRequests atomic.Uint64
	scenarioCells    atomic.Uint64
	// columnarRequests counts /price requests carrying columnar framing
	// (binary frame or JSON-framed columns).
	columnarRequests atomic.Uint64
	// streamRequests counts GET /stream subscription attempts;
	// streamSlowDisconnects counts subscribers disconnected for missing
	// the frame-write deadline (stalled clients).
	streamRequests        atomic.Uint64
	streamSlowDisconnects atomic.Uint64

	code200 atomic.Uint64
	code400 atomic.Uint64
	code404 atomic.Uint64
	code405 atomic.Uint64
	code408 atomic.Uint64
	code429 atomic.Uint64
	code503 atomic.Uint64

	shedAdmission atomic.Uint64
	shedRate      atomic.Uint64
	shedDrain     atomic.Uint64

	degradedResponses atomic.Uint64

	hists map[string]*hist
}

func newStats() *stats {
	s := &stats{start: time.Now(), hists: make(map[string]*hist, len(latencyMethods))}
	for _, m := range latencyMethods {
		s.hists[m] = &hist{}
	}
	return s
}

func (s *stats) observeLatency(method string, d time.Duration) {
	if h, ok := s.hists[method]; ok {
		h.observe(d)
	}
}

func (s *stats) countCode(code int) {
	switch code {
	case 200:
		s.code200.Add(1)
	case 400:
		s.code400.Add(1)
	case 404:
		s.code404.Add(1)
	case 405:
		s.code405.Add(1)
	case 408:
		s.code408.Add(1)
	case 429:
		s.code429.Add(1)
	case 503:
		s.code503.Add(1)
	}
}

// StatszResponse is the GET /statsz body.
type StatszResponse struct {
	UptimeS float64 `json:"uptime_s"`

	Requests map[string]uint64 `json:"requests"`
	Codes    map[string]uint64 `json:"codes"`
	Shed     map[string]uint64 `json:"shed"`

	Degraded           bool   `json:"degraded"`
	DegradeTransitions uint64 `json:"degrade_transitions"`
	DegradedResponses  uint64 `json:"degraded_responses"`

	InFlightUnits int64 `json:"in_flight_units"`
	MaxUnits      int64 `json:"max_units"`
	Draining      bool  `json:"draining"`

	Coalesce map[string]uint64 `json:"coalesce"`

	// Scenario is the scenario engine's work counters: requests seen and
	// cells evaluated by successful responses.
	Scenario map[string]uint64 `json:"scenario"`

	LatencyUS map[string]histJSON `json:"latency_us"`

	// Sched is the parallel pool's cumulative scheduler counters
	// (pool.jobs, pool.dispatched, ...); diff consecutive reads for
	// per-interval deltas — the e2e gate uses this to prove cancelled
	// work stops reaching the pool.
	Sched map[string]uint64 `json:"sched"`

	// OpMix is the sampled dynamic operation mix of the coalesced batch
	// engine (op name -> count over sampled flushes).
	OpMix map[string]uint64 `json:"opmix,omitempty"`

	// Cache is the content-addressed response cache's counters (a fixed
	// struct, not a map, so snapshot encoding stays deterministic); nil
	// when caching is disabled.
	Cache *pricecache.Stats `json:"cache,omitempty"`

	// Stream is the streaming Greeks hub's counters (fixed struct for the
	// same determinism reason); nil when streaming is disabled.
	Stream *stream.Stats `json:"stream,omitempty"`
}

func (s *Server) statszSnapshot() StatszResponse {
	st := s.stats
	co := s.co.Snapshot()
	out := StatszResponse{
		UptimeS: time.Since(st.start).Seconds(),
		Requests: map[string]uint64{
			"price":          st.priceRequests.Load(),
			"greeks":         st.greeksRequests.Load(),
			"price_columnar": st.columnarRequests.Load(),
			"scenario":       st.scenarioRequests.Load(),
			"stream":         st.streamRequests.Load(),
		},
		Codes: map[string]uint64{
			"200": st.code200.Load(),
			"400": st.code400.Load(),
			"404": st.code404.Load(),
			"405": st.code405.Load(),
			"408": st.code408.Load(),
			"429": st.code429.Load(),
			"503": st.code503.Load(),
		},
		Shed: map[string]uint64{
			"admission": st.shedAdmission.Load(),
			"rate":      st.shedRate.Load(),
			"drain":     st.shedDrain.Load(),
		},
		Degraded:           s.deg.active(),
		DegradeTransitions: s.deg.flips.Load(),
		DegradedResponses:  st.degradedResponses.Load(),
		InFlightUnits:      s.adm.inFlight(),
		MaxUnits:           s.adm.max,
		Draining:           s.draining.Load(),
		Coalesce: map[string]uint64{
			"flushes":           co.Flushes,
			"solo_flushes":      co.SoloFlushes,
			"coalesced_tickets": co.CoalescedTickets,
			"batched_options":   co.BatchedOptions,
		},
		Scenario: map[string]uint64{
			"requests": st.scenarioRequests.Load(),
			"cells":    st.scenarioCells.Load(),
		},
		LatencyUS: make(map[string]histJSON, len(latencyMethods)),
		Sched:     parallel.Sched().Map(),
	}
	for _, m := range latencyMethods {
		out.LatencyUS[m] = st.hists[m].snapshot()
	}
	if mix := s.co.OpMix(); mix.Items > 0 {
		out.OpMix = mix.Map()
	}
	if s.cache != nil {
		cs := s.cache.Snapshot()
		out.Cache = &cs
	}
	if s.hub != nil {
		hs := s.hub.Snapshot()
		hs.SlowDisconnects = st.streamSlowDisconnects.Load()
		out.Stream = &hs
	}
	return out
}
