package cranknicolson

import (
	"math"
	"testing"

	"finbench/internal/binomial"
	"finbench/internal/blackscholes"
	"finbench/internal/perf"
	"finbench/internal/workload"
)

var mkt = workload.MarketParams{R: 0.05, Sigma: 0.2}

// The European mode must converge to the Black-Scholes put.
func TestEuropeanConvergesToBlackScholes(t *testing.T) {
	for _, tc := range []struct{ s, x, tt float64 }{
		{100, 100, 1}, {100, 110, 0.5}, {90, 100, 2},
	} {
		_, want := blackscholes.PriceScalar(tc.s, tc.x, tc.tt, mkt)
		got := PriceEuropeanPut(tc.s, tc.x, tc.tt, 512, 1000, mkt)
		if math.Abs(got-want) > 0.02*math.Max(1, want) {
			t.Fatalf("S=%g X=%g T=%g: CN %g vs BS %g", tc.s, tc.x, tc.tt, got, want)
		}
	}
}

// The American solve must match a high-resolution binomial tree.
func TestAmericanMatchesBinomial(t *testing.T) {
	for _, tc := range []struct{ s, x, tt float64 }{
		{100, 100, 1}, {100, 110, 0.5}, {110, 100, 1.5},
	} {
		want := binomial.PriceAmericanPutScalar(tc.s, tc.x, tc.tt, 2048, mkt)
		got := PriceAmericanPut(tc.s, tc.x, tc.tt, 512, 1000, mkt)
		if math.Abs(got-want) > 0.02*math.Max(1, want) {
			t.Fatalf("S=%g X=%g T=%g: CN %g vs binomial %g", tc.s, tc.x, tc.tt, got, want)
		}
	}
}

// American value must dominate European and intrinsic.
func TestAmericanDominance(t *testing.T) {
	for _, spot := range []float64{80, 95, 100, 110, 130} {
		amer := PriceAmericanPut(spot, 100, 1, 256, 500, mkt)
		euro := PriceEuropeanPut(spot, 100, 1, 256, 500, mkt)
		if amer < euro-1e-6 {
			t.Fatalf("S=%g: American %g < European %g", spot, amer, euro)
		}
		// O(dx^2) interpolation error in the exercised region.
		if amer < math.Max(100-spot, 0)-2e-3 {
			t.Fatalf("S=%g: American %g below intrinsic", spot, amer)
		}
	}
}

// Wavefront SIMD must reproduce the scalar GSOR solution: the wavefront
// reorders the same dependence DAG, so converged solutions agree to
// solver tolerance.
func TestWavefrontMatchesScalar(t *testing.T) {
	for _, width := range []int{4, 8} {
		s1 := NewSolver(1, 256, 200, DefaultAlpha, mkt)
		u1, _ := s1.SolveScalar(nil)
		s2 := NewSolver(1, 256, 200, DefaultAlpha, mkt)
		u2, _ := s2.SolveWavefront(width, nil)
		for j := range u1 {
			if math.Abs(u1[j]-u2[j]) > 1e-6 {
				t.Fatalf("width %d: u[%d] scalar %g vs wavefront %g", width, j, u1[j], u2[j])
			}
		}
	}
}

func TestSplitMatchesFlatWavefront(t *testing.T) {
	for _, width := range []int{4, 8} {
		s1 := NewSolver(1, 256, 200, DefaultAlpha, mkt)
		u1, sw1 := s1.SolveWavefront(width, nil)
		s2 := NewSolver(1, 256, 200, DefaultAlpha, mkt)
		u2, sw2 := s2.SolveWavefrontSplit(width, nil)
		if sw1 != sw2 {
			t.Fatalf("width %d: sweep counts differ: %d vs %d", width, sw1, sw2)
		}
		for j := range u1 {
			if u1[j] != u2[j] {
				t.Fatalf("width %d: u[%d] flat %g vs split %g (must be bitwise)", width, j, u1[j], u2[j])
			}
		}
	}
}

// Per-option prices from the batch drivers must agree across levels.
func TestBatchLevelsAgree(t *testing.T) {
	g := workload.OptionGen{SMin: 80, SMax: 120, XMin: 90, XMax: 110, TMin: 0.5, TMax: 1.5, Seed: 7}
	ref := g.GenerateAOS(6)
	Run(LevelRef, ref, 128, 100, 8, mkt, nil)
	for _, level := range []Level{LevelIntermediate, LevelAdvanced} {
		a := g.GenerateAOS(6)
		Run(level, a, 128, 100, 8, mkt, nil)
		for i := 0; i < a.Len(); i++ {
			if math.Abs(a.Put(i)-ref.Put(i)) > 1e-5*math.Max(1, ref.Put(i)) {
				t.Fatalf("%v option %d: %g vs ref %g", level, i, a.Put(i), ref.Put(i))
			}
		}
	}
}

// Fig. 7's point: the scalar reference cannot vectorize (no vector ops),
// the intermediate variant gathers, and the advanced variant converts
// gathers into contiguous (reversed) loads.
func TestCountsAcrossLevels(t *testing.T) {
	g := workload.OptionGen{SMin: 95, SMax: 105, XMin: 95, XMax: 105, TMin: 1, TMax: 1, Seed: 3}
	var cr, ci, ca perf.Counts
	Run(LevelRef, g.GenerateAOS(2), 128, 50, 8, mkt, &cr)
	Run(LevelIntermediate, g.GenerateAOS(2), 128, 50, 8, mkt, &ci)
	Run(LevelAdvanced, g.GenerateAOS(2), 128, 50, 8, mkt, &ca)

	if cr.Get(perf.OpGather) != 0 || cr.Get(perf.OpVecFMA) != 0 {
		t.Fatal("reference level must be scalar only")
	}
	if ci.Get(perf.OpGatherNear) == 0 {
		t.Fatal("intermediate level must gather (near, stride -2)")
	}
	if ca.Get(perf.OpGatherNear) != 0 || ca.Get(perf.OpGather) != 0 {
		t.Fatal("advanced level must not gather")
	}
	if ca.Get(perf.OpVecLoad) == 0 || ca.Get(perf.OpVecMisc) == 0 {
		t.Fatal("advanced level must use reversed contiguous loads")
	}
	// The advanced level pays the rearrangement cost in scalar traffic.
	if ca.Get(perf.OpScalarStore) <= ci.Get(perf.OpScalarStore) {
		t.Fatal("advanced level should show rearrangement stores")
	}
	if cr.Items != 2 || ci.Items != 2 || ca.Items != 2 {
		t.Fatal("items wrong")
	}
}

// Payoff sanity: obstacle positive only in the money, increasing in tau.
func TestPayoffShape(t *testing.T) {
	s := NewSolver(1, 128, 100, DefaultAlpha, mkt)
	if s.Payoff(0.5, 0) != 0 {
		t.Fatal("OTM obstacle must be zero")
	}
	if s.Payoff(-0.5, 0) <= 0 {
		t.Fatal("ITM obstacle must be positive")
	}
	if s.Payoff(-0.5, 0.01) <= s.Payoff(-0.5, 0) {
		t.Fatal("obstacle must grow with tau (time factor)")
	}
}

// Price recovery: at tau=0 (no evolution) the recovered value equals the
// payoff.
func TestPriceRecoveryAtPayoff(t *testing.T) {
	s := NewSolver(1, 256, 100, DefaultAlpha, mkt)
	u := make([]float64, s.J+1)
	for j := range u {
		u[j] = s.Payoff(s.x(j), 0)
	}
	s.TauMax = 0 // pretend no time evolved
	for _, spot := range []float64{90, 100, 105} {
		got := s.Price(u, spot, 100)
		want := math.Max(100-spot, 0)
		if math.Abs(got-want) > 0.05 { // linear-interp discretization error
			t.Fatalf("S=%g: recovered %g, want %g", spot, got, want)
		}
	}
}

func TestSolverGridConsistency(t *testing.T) {
	s := NewSolver(2, 256, 1000, 0.73, mkt)
	if math.Abs(s.DTau/(s.Dx*s.Dx)-0.73) > 1e-12 {
		t.Fatalf("alpha = %g", s.DTau/(s.Dx*s.Dx))
	}
	if math.Abs(s.TauMax-mkt.Sigma*mkt.Sigma*2/2) > 1e-15 {
		t.Fatalf("tauMax = %g", s.TauMax)
	}
	if s.x(0) != s.XMin || math.Abs(s.x(s.J)-(-s.XMin)) > 1e-12 {
		t.Fatal("grid not centered")
	}
}

func TestLevelString(t *testing.T) {
	if LevelRef.String() != "reference" || LevelAdvanced.String() != "wavefront-simd+reorder" {
		t.Fatal("Level.String wrong")
	}
	if Level(99).String() != "unknown" {
		t.Fatal("unknown level string")
	}
}

func BenchmarkScalar256x200(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewSolver(1, 256, 200, DefaultAlpha, mkt)
		s.SolveScalar(nil)
	}
}

func BenchmarkWavefrontW8_256x200(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewSolver(1, 256, 200, DefaultAlpha, mkt)
		s.SolveWavefront(8, nil)
	}
}

func BenchmarkWavefrontSplitW8_256x200(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewSolver(1, 256, 200, DefaultAlpha, mkt)
		s.SolveWavefrontSplit(8, nil)
	}
}

// Theta-scheme validation: the fully implicit scheme converges (first
// order), and the fully explicit scheme obeys the classical stability
// bound alpha <= 1/2 — stable below it, divergent above it. These pin the
// time-stepping machinery independently of the PSOR solver.
func TestThetaSchemeImplicit(t *testing.T) {
	_, want := blackscholes.PriceScalar(100, 100, 1, mkt)
	s := NewSolver(1, 256, 1000, DefaultAlpha, mkt)
	s.American = false
	s.Theta = 1.0
	u, _ := s.SolveScalar(nil)
	got := s.Price(u, 100, 100)
	if math.Abs(got-want) > 0.05*want {
		t.Fatalf("implicit scheme price %g vs BS %g", got, want)
	}
}

func TestThetaSchemeExplicitStable(t *testing.T) {
	_, want := blackscholes.PriceScalar(100, 100, 1, mkt)
	s := NewSolver(1, 256, 1000, 0.4, mkt) // alpha < 1/2: stable
	s.American = false
	s.Theta = 0.0
	u, _ := s.SolveScalar(nil)
	got := s.Price(u, 100, 100)
	if math.Abs(got-want) > 0.05*want {
		t.Fatalf("stable explicit price %g vs BS %g", got, want)
	}
}

func TestThetaSchemeExplicitUnstable(t *testing.T) {
	// alpha = 0.73 > 1/2: the pure explicit scheme must blow up.
	s := NewSolver(1, 256, 1000, DefaultAlpha, mkt)
	s.American = false
	s.Theta = 0.0
	u, _ := s.SolveScalar(nil)
	got := s.Price(u, 100, 100)
	if !math.IsNaN(got) && math.Abs(got) < 100 {
		t.Fatalf("explicit scheme at alpha=0.73 unexpectedly stable: price %g", got)
	}
}

// All theta values must leave the default CN path untouched.
func TestThetaDefaultIsCN(t *testing.T) {
	s := NewSolver(1, 64, 50, DefaultAlpha, mkt)
	if s.Theta != 0.5 {
		t.Fatalf("default theta = %g", s.Theta)
	}
	if math.Abs(s.alphaExplicit()-s.Alpha) > 1e-15 || math.Abs(s.alphaImplicit()-s.Alpha) > 1e-15 {
		t.Fatalf("CN split wrong: %g/%g", s.alphaExplicit(), s.alphaImplicit())
	}
}

// Rannacher startup must damp the kink-excited oscillation of plain CN.
// At the paper's alpha = 0.73 the oscillatory mode decays quickly and CN is
// already clean; the ringing regime is a large lattice ratio (few time
// steps on a fine grid), where the payoff kink makes gamma near the strike
// oscillate wildly without the implicit startup.
func TestRannacherDampsOscillation(t *testing.T) {
	gammaRoughness := func(rann int) float64 {
		s := NewSolver(0.5, 512, 32, 50.0, mkt) // alpha = 50: CN rings
		s.American = false
		s.RannacherSteps = rann
		u, _ := s.SolveScalar(nil)
		// Total variation of the second difference of u near the kink.
		var tv float64
		lo, hi := s.J/2-40, s.J/2+40
		prev := u[lo-1] - 2*u[lo] + u[lo+1]
		for j := lo + 1; j < hi; j++ {
			cur := u[j-1] - 2*u[j] + u[j+1]
			tv += math.Abs(cur - prev)
			prev = cur
		}
		return tv
	}
	plain := gammaRoughness(0)
	rann := gammaRoughness(4)
	if rann > plain/2 {
		t.Fatalf("Rannacher roughness %g not well below plain CN %g", rann, plain)
	}
}

// At the paper's own alpha the startup must not hurt the price.
func TestRannacherPriceNeutralAtPaperAlpha(t *testing.T) {
	_, want := blackscholes.PriceScalar(100, 105, 0.5, mkt)
	price := func(rann int) float64 {
		s := NewSolver(0.5, 256, 500, DefaultAlpha, mkt)
		s.American = false
		s.RannacherSteps = rann
		u, _ := s.SolveScalar(nil)
		return s.Price(u, 100, 105)
	}
	plain := math.Abs(price(0) - want)
	rann := math.Abs(price(4) - want)
	if rann > plain*2+1e-4 {
		t.Fatalf("Rannacher degraded price error: %g vs %g", rann, plain)
	}
}
