// Package leakcheck seeds unjoined goroutines and unbracketed breaker
// probes, next to every recognized join/bound idiom (WaitGroup, channel
// send, stop channel, channel drain via a named callee).
package leakcheck

import (
	"context"
	"sync"

	"finbench/internal/resilience"
	"finbench/internal/serve/coalesce"
	"finbench/internal/serve/wire"
)

func work() {}

// LeakyClosure launches a goroutine with no join or stop signal.
func LeakyClosure() {
	go func() { // seeded violation
		work()
	}()
}

// LeakyNamed launches a named function that never observes a stop.
func LeakyNamed() {
	go spin() // seeded violation
}

func spin() {
	for i := 0; i < 1000; i++ {
		work()
	}
}

// GoodWaitGroup joins via WaitGroup.
func GoodWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// GoodChannelJoin signals completion on a channel.
func GoodChannelJoin() {
	done := make(chan struct{})
	go func() {
		work()
		done <- struct{}{}
	}()
	<-done
}

// GoodStopBound observes a stop channel inside its loop.
func GoodStopBound(stop <-chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				work()
			}
		}
	}()
}

// GoodNamedDrain delegates to a function whose body drains a channel
// (found one call-graph hop deep).
func GoodNamedDrain(jobs chan int) {
	go drain(jobs)
}

func drain(jobs chan int) {
	for range jobs {
		work()
	}
}

// metricsPump runs for the process lifetime by design; the suppression
// records that.
func metricsPump() {
	// finlint:ignore leakcheck process-lifetime metrics pump, reaped at exit
	go func() {
		work()
	}()
}

// flightLocal is the singleflight header shape: waiters park on done
// until the leader lands the flight.
type flightLocal struct {
	done chan struct{}
	body []byte
}

// BadDetachedLeader launches a singleflight leader that never lands the
// flight: no close, no send, no stop signal — every waiter parked on
// done blocks forever and the goroutine outlives the request that
// started it.
func BadDetachedLeader(f *flightLocal, compute func() []byte) {
	go func() { // seeded violation
		f.body = compute()
	}()
}

// GoodFlightLeader closes the flight's done channel after computing, so
// the goroutine is bounded and every waiter is released. Clean.
func GoodFlightLeader(f *flightLocal, compute func() []byte) {
	go func() {
		f.body = compute()
		close(f.done)
	}()
}

// GoodFlightWaiter blocks only until the flight lands or its own ctx
// expires — the leader's latency never becomes the waiter's. Clean (no
// goroutine; documents the waiter side of the leader/waiter contract).
func GoodFlightWaiter(ctx context.Context, f *flightLocal) ([]byte, error) {
	select {
	case <-f.done:
		return f.body, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// subLocal is the SSE subscriber shape: a bounded frame buffer plus a
// gone channel the hub closes on unsubscribe/drain.
type subLocal struct {
	mu      sync.Mutex
	backlog [][]byte
	frames  chan []byte
	gone    chan struct{}
}

// BadSubscriberPump launches a per-subscriber writer that busy-polls a
// locked backlog and never observes any stop signal: when the client
// disconnects, the hub has no way to end it — one spinning goroutine
// leaked per departed subscriber.
func BadSubscriberPump(sub *subLocal, write func([]byte) error) {
	go func() { // seeded violation
		for {
			sub.mu.Lock()
			var f []byte
			if len(sub.backlog) > 0 {
				f, sub.backlog = sub.backlog[0], sub.backlog[1:]
			}
			sub.mu.Unlock()
			if f != nil && write(f) != nil {
				return
			}
		}
	}()
}

// GoodSubscriberPump selects on the gone channel alongside the frame
// buffer, so the hub's shutdown (or an unsubscribe) bounds the goroutine
// no matter what the producer does. Clean.
func GoodSubscriberPump(sub *subLocal, write func([]byte) error) {
	go func() {
		for {
			select {
			case <-sub.gone:
				return
			case f := <-sub.frames:
				if write(f) != nil {
					return
				}
			}
		}
	}()
}

// UnsettledAllow admits a probe and never settles it.
func UnsettledAllow(b *resilience.Breaker) bool {
	return b.Allow() // seeded violation
}

// GoodBracketed settles every admitted probe on some path.
func GoodBracketed(b *resilience.Breaker, op func() error) error {
	if !b.Allow() {
		return nil
	}
	if err := op(); err != nil {
		b.Failure()
		return err
	}
	b.Success()
	return nil
}

// LeakyPooledBuffer acquires a wire buffer and never releases it: the
// freelist degrades to garbage-collected allocation on the hot path.
func LeakyPooledBuffer() int {
	buf := wire.GetBuffer() // seeded violation
	buf.B = append(buf.B, '{')
	return len(buf.B)
}

// GoodPooledBuffer brackets the Get with its Put in the same function.
func GoodPooledBuffer() int {
	buf := wire.GetBuffer()
	defer wire.PutBuffer(buf)
	buf.B = append(buf.B, '{')
	return len(buf.B)
}

// GoodPooledReturn hands the pooled object straight to the caller — a
// direct return transfers ownership, so the Put lives upstream.
func GoodPooledReturn() *wire.PriceResponse {
	return wire.GetPriceResponse()
}

// LeakyPooledTicket drops a coalescer ticket without recycling it.
func LeakyPooledTicket(n int) int {
	t := coalesce.GetTicket(n) // seeded violation
	return cap(t.Spots)
}

// GoodPooledTicket recycles the ticket on every path.
func GoodPooledTicket(n int) int {
	t := coalesce.GetTicket(n)
	c := cap(t.Spots)
	coalesce.PutTicket(t)
	return c
}
