package montecarlo

import (
	"errors"

	"finbench/internal/linalg"
	"finbench/internal/mathx"
	"finbench/internal/rng"
	"finbench/internal/workload"
)

// Multi-asset basket options: the paper's taxonomy (Sec. II) observes that
// lattice and finite-difference methods scale exponentially with the
// number of underlyings and are "used only for problems with a small
// number of underlyings (<= 3)", leaving Monte Carlo as the method for
// baskets. This pricer simulates correlated terminal prices via the
// Cholesky factor of the correlation matrix.

// Basket is a European call on a weighted arithmetic basket:
// payoff max(sum_i w_i S_i(T) - X, 0).
type Basket struct {
	// Spots, Vols and Weights are per-asset (equal lengths).
	Spots, Vols, Weights []float64
	// Corr is the asset correlation matrix.
	Corr [][]float64
	// X is the strike; T the expiry.
	X, T float64
}

// ErrBasketShape indicates inconsistent basket dimensions.
var ErrBasketShape = errors.New("montecarlo: inconsistent basket dimensions")

// PriceBasketMC prices the basket call with npaths correlated samples.
func PriceBasketMC(b Basket, npaths int, seed uint64, mkt workload.MarketParams) (Result, error) {
	na := len(b.Spots)
	if na == 0 || len(b.Vols) != na || len(b.Weights) != na || len(b.Corr) != na {
		return Result{}, ErrBasketShape
	}
	chol, err := linalg.Cholesky(b.Corr)
	if err != nil {
		return Result{}, err
	}
	df := mathx.Exp(-mkt.R * b.T)
	sqT := mathx.Sqrt(b.T)
	stream := rng.NewStream(0, seed)
	z := make([]float64, na)
	w := make([]float64, na)
	var v0, v1 float64
	for p := 0; p < npaths; p++ {
		stream.NormalICDF(z)
		// Correlate: w = L z.
		for i := 0; i < na; i++ {
			var s float64
			for k := 0; k <= i; k++ {
				s += chol[i][k] * z[k]
			}
			w[i] = s
		}
		var basket float64
		for i := 0; i < na; i++ {
			vol := b.Vols[i]
			st := b.Spots[i] * mathx.Exp((mkt.R-vol*vol/2)*b.T+vol*sqT*w[i])
			basket += b.Weights[i] * st
		}
		payoff := basket - b.X
		if payoff < 0 {
			payoff = 0
		}
		payoff *= df
		v0 += payoff
		v1 += payoff * payoff
	}
	n := float64(npaths)
	mean := v0 / n
	variance := v1/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Result{Price: mean, StdErr: mathx.Sqrt(variance / n)}, nil
}
