package resilience

import (
	"sync"
	"time"
)

// State is a circuit breaker's position.
type State uint8

const (
	// Closed admits every request (the healthy state).
	Closed State = iota
	// Open refuses every request until OpenFor has elapsed.
	Open
	// HalfOpen admits up to Probes concurrent trial requests; enough
	// successes close the breaker, any failure reopens it.
	HalfOpen
)

// String returns the conventional lowercase name.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes a Breaker; zero values select the defaults.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that opens the
	// breaker (default 5).
	FailureThreshold int
	// OpenFor is how long the breaker stays open before admitting probes
	// (default 1s).
	OpenFor time.Duration
	// Probes bounds the concurrent trial requests in half-open (default 1).
	Probes int
	// SuccessesToClose is the probe successes required to close (default 1).
	SuccessesToClose int
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = time.Second
	}
	if c.Probes <= 0 {
		c.Probes = 1
	}
	if c.SuccessesToClose <= 0 {
		c.SuccessesToClose = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a per-replica circuit breaker. Callers bracket each request
// with Allow (admission) and exactly one of Success/Failure per admitted
// request; Allow returning false means the replica is to be skipped.
type Breaker struct {
	cfg BreakerConfig

	mu           sync.Mutex
	state        State
	consecFails  int
	openedAt     time.Time
	probesOut    int // trial requests currently in flight (half-open)
	probeSuccess int

	opens     uint64
	probes    uint64
	successes uint64
	failures  uint64
}

// NewBreaker builds a breaker in the closed state.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a request may be sent. In the open state it flips
// to half-open once OpenFor has elapsed and admits a bounded number of
// probes; excess callers are refused until a probe resolves.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.OpenFor {
			return false
		}
		b.state = HalfOpen
		b.probesOut = 0
		b.probeSuccess = 0
		fallthrough
	case HalfOpen:
		if b.probesOut >= b.cfg.Probes {
			return false
		}
		b.probesOut++
		b.probes++
		return true
	}
	return true
}

// Success records a request that completed healthily.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.successes++
	switch b.state {
	case Closed:
		b.consecFails = 0
	case HalfOpen:
		if b.probesOut > 0 {
			b.probesOut--
		}
		b.probeSuccess++
		if b.probeSuccess >= b.cfg.SuccessesToClose {
			b.state = Closed
			b.consecFails = 0
		}
	case Open:
		// A straggler from before the trip; harmless.
	}
}

// Failure records a failed request (transport error, 5xx, truncation).
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	switch b.state {
	case Closed:
		b.consecFails++
		if b.consecFails >= b.cfg.FailureThreshold {
			b.trip()
		}
	case HalfOpen:
		if b.probesOut > 0 {
			b.probesOut--
		}
		b.trip()
	case Open:
		// Already open; stragglers don't extend the window (openedAt is
		// the decision point the half-open timer runs from).
	}
}

// trip moves to open; callers hold b.mu.
func (b *Breaker) trip() {
	b.state = Open
	b.openedAt = b.cfg.Now()
	b.opens++
	b.probeSuccess = 0
}

// State returns the current position, applying the open→half-open clock
// transition so observers don't read a stale "open".
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && b.cfg.Now().Sub(b.openedAt) >= b.cfg.OpenFor {
		return HalfOpen // next Allow will make it official
	}
	return b.state
}

// BreakerSnapshot is the observable state for /statsz.
type BreakerSnapshot struct {
	State     string `json:"state"`
	Opens     uint64 `json:"opens"`
	Probes    uint64 `json:"probes"`
	Successes uint64 `json:"successes"`
	Failures  uint64 `json:"failures"`
}

// Snapshot returns the counters and effective state.
func (b *Breaker) Snapshot() BreakerSnapshot {
	state := b.State().String()
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerSnapshot{
		State:     state,
		Opens:     b.opens,
		Probes:    b.probes,
		Successes: b.successes,
		Failures:  b.failures,
	}
}
