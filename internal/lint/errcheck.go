package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// errcheckPass ("errcheck-lite") flags statement-level calls whose error
// result is silently dropped. A benchmark harness that swallows an error
// reports numbers for work that never ran. "Lite" scope: only bare
// expression statements are flagged (not defer/go, and an explicit
// `_ = f()` is treated as a deliberate, visible discard); fmt's Print
// family and the never-failing bytes.Buffer / strings.Builder writers are
// excluded.
func errcheckPass() *Pass {
	return &Pass{
		Name: "errcheck",
		Doc:  "dropped error result from a statement-level call",
		Run:  runErrcheck,
	}
}

func runErrcheck(p *Package, report func(pos token.Pos, msg string)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !callReturnsError(p, call) || errcheckExcluded(p, call) {
				return true
			}
			report(call.Pos(), fmt.Sprintf(
				"error result of %s is dropped; handle it, or discard explicitly with `_ = ...` and a reason", types.ExprString(call.Fun)))
			return true
		})
	}
}

// callReturnsError reports whether any result of the call has type error.
func callReturnsError(p *Package, call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call]
	if !ok || tv.Type == nil || tv.IsType() {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(t, errType)
	}
}

// errcheckExcluded filters callees whose dropped error is conventional:
// fmt's printers and the guaranteed-nil-error in-memory writers.
func errcheckExcluded(p *Package, call *ast.CallExpr) bool {
	if pkgPath, _, ok := calleeStatic(p, call); ok {
		return pkgPath == "fmt"
	}
	// Method call: exclude receivers *bytes.Buffer and *strings.Builder.
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	tv, ok := p.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (pkg == "bytes" && name == "Buffer") || (pkg == "strings" && name == "Builder")
}
