module finbench

go 1.23
