package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// parallelPkgPath is the module's OpenMP-style loop package; the closures
// it receives run on multiple goroutines at once.
const parallelPkgPath = "finbench/internal/parallel"

// parallelLoopFuncs are the entry points whose closure argument executes
// concurrently. ForIndexed is included: its worker id makes the per-worker
// pattern *possible*, but capturing one shared stream in its closure is
// exactly as racy as in For.
var parallelLoopFuncs = map[string]bool{
	"For":              true,
	"ForWorkers":       true,
	"ForDynamic":       true,
	"ForGuided":        true,
	"ForIndexed":       true,
	"ForIndexedMerged": true,
	"Run":              true,
	"Reduce":           true,
	"ReduceFloat64":    true,
	// Cancellable variants (the serving path): the closure contract is
	// identical, so a captured stream races exactly the same way.
	"ForCtx":              true,
	"ForDynamicCtx":       true,
	"ForIndexedMergedCtx": true,
}

// rngsharePass flags an *rng.Stream or *math/rand.Rand captured by a
// closure handed to the parallel package. MT19937 state updates are not
// atomic; two workers advancing one twister race on the state vector and
// silently correlate their draws (the paper's interleaved-stream design,
// Sec. IV-D3, exists precisely to avoid this). Each worker must derive its
// own stream inside the closure, e.g. rng.NewStream(worker, seed).
func rngsharePass() *Pass {
	return &Pass{
		Name: "rngshare",
		Doc:  "RNG stream captured by a parallel-loop closure (must be per-worker)",
		Run:  runRNGShare,
	}
}

func runRNGShare(p *Package, report func(pos token.Pos, msg string)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, fn, ok := calleeStatic(p, call)
			if !ok || pkgPath != parallelPkgPath || !parallelLoopFuncs[fn] {
				return true
			}
			for _, arg := range call.Args {
				lit, ok := arg.(*ast.FuncLit)
				if !ok {
					continue
				}
				checkClosureCaptures(p, fn, lit, report)
			}
			return true
		})
	}
}

// checkClosureCaptures reports every RNG-typed variable used inside lit
// but declared outside it (one report per variable).
func checkClosureCaptures(p *Package, loopFn string, lit *ast.FuncLit, report func(pos token.Pos, msg string)) {
	reported := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := p.Info.Uses[id].(*types.Var)
		if !ok || reported[obj] {
			return true
		}
		if withinNode(lit, obj.Pos()) {
			return true // declared inside the closure: worker-local, fine
		}
		kind, shared := sharedRNGKind(obj.Type())
		if !shared {
			return true
		}
		reported[obj] = true
		report(id.Pos(), fmt.Sprintf(
			"%s %q is captured by the closure passed to parallel.%s; workers would race on its state — derive a per-worker stream inside the closure (e.g. rng.NewStream(worker, seed) with parallel.ForIndexed)",
			kind, obj.Name(), loopFn))
		return true
	})
}

// sharedRNGKind reports whether t is a pointer to one of the stateful
// generator types whose methods are not safe for concurrent use.
func sharedRNGKind(t types.Type) (string, bool) {
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return "", false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", false
	}
	switch obj.Pkg().Path() {
	case "finbench/internal/rng":
		if obj.Name() == "Stream" || obj.Name() == "MT" {
			return "rng stream", true
		}
	case "math/rand", "math/rand/v2":
		if obj.Name() == "Rand" {
			return "math/rand source", true
		}
	}
	return "", false
}
