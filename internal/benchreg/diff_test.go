package benchreg

import (
	"strings"
	"testing"
	"time"
)

// slow returns a copy of snap with the named kernel's throughput scaled
// by factor (its MAD scaled along with it).
func slow(snap *Snapshot, key string, factor float64) *Snapshot {
	out := *snap
	out.Kernels = make([]Record, len(snap.Kernels))
	copy(out.Kernels, snap.Kernels)
	for i := range out.Kernels {
		if out.Kernels[i].Key() == key {
			out.Kernels[i].OpsPerSec *= factor
			out.Kernels[i].OpsMAD *= factor
			out.Kernels[i].MedianSec /= factor
		}
	}
	return &out
}

func TestGateDetectsSyntheticSlowdown(t *testing.T) {
	base := testSnapshot()
	const key = "fig4 / Advanced (VML batch)"
	report := Check(base, slow(base, key, 0.5), DefaultGate())
	if len(report.Regressions) != 1 {
		t.Fatalf("%d regressions, want exactly 1", len(report.Regressions))
	}
	if report.Regressions[0].Key != key {
		t.Fatalf("regression on %q, want %q", report.Regressions[0].Key, key)
	}
	if !report.Failed(false) {
		t.Fatal("a 2x slowdown on a matching env must fail the check")
	}
	// Worst ratio sorts first in the delta table.
	if report.Deltas[0].Key != key {
		t.Fatalf("worst delta %q not sorted first", report.Deltas[0].Key)
	}
}

func TestGateToleratesSmallAndNoisySlowdowns(t *testing.T) {
	base := testSnapshot()
	const key = "fig5 / Advanced (+unroll)"
	// 5% drop: inside MaxSlowdown, never a regression.
	if r := Check(base, slow(base, key, 0.95), DefaultGate()); len(r.Regressions) != 0 {
		t.Fatalf("5%% drop flagged: %+v", r.Regressions[0])
	}
	// 20% drop but the baseline is extremely noisy: inside 3xMAD.
	noisy := *base
	noisy.Kernels = make([]Record, len(base.Kernels))
	copy(noisy.Kernels, base.Kernels)
	for i := range noisy.Kernels {
		if noisy.Kernels[i].Key() == key {
			noisy.Kernels[i].OpsMAD = noisy.Kernels[i].OpsPerSec * 0.10
		}
	}
	if r := Check(&noisy, slow(&noisy, key, 0.8), DefaultGate()); len(r.Regressions) != 0 {
		t.Fatal("20% drop within a 30% noise band must not gate")
	}
	// The same 20% drop with a tight MAD does gate.
	if r := Check(base, slow(base, key, 0.8), DefaultGate()); len(r.Regressions) != 1 {
		t.Fatal("20% drop beyond the noise band must gate")
	}
	// Speedups never gate.
	if r := Check(base, slow(base, key, 2.0), DefaultGate()); len(r.Regressions) != 0 || r.Failed(true) {
		t.Fatal("a speedup must not gate")
	}
}

func TestDiffReportsAddedAndRemovedKernels(t *testing.T) {
	base := testSnapshot()
	cand := testSnapshot()
	cand.Kernels = cand.Kernels[:len(cand.Kernels)-1] // drop tab2/uniform
	cand.Kernels = append(cand.Kernels, Record{
		Experiment: "fig6", Label: "Cache-to-cache", Units: "paths/s",
		Items: 8192, Reps: 5, OpsPerSec: 1.4e5, OpsMAD: 900,
	})
	report := Check(base, cand, DefaultGate())
	if len(report.Regressions) != 0 || report.Failed(true) {
		t.Fatal("added/removed kernels must not gate")
	}
	var added, removed bool
	for _, d := range report.Deltas {
		switch {
		case d.Old == nil && d.Key == "fig6 / Cache-to-cache":
			added = true
		case d.New == nil && d.Key == "tab2 / uniform DP RNG/sec":
			removed = true
		}
	}
	if !added || !removed {
		t.Fatalf("added=%v removed=%v, want both reported", added, removed)
	}
	table := report.Table()
	if !strings.Contains(table, "added") || !strings.Contains(table, "removed") {
		t.Fatalf("table missing added/removed verdicts:\n%s", table)
	}
}

func TestEnvMismatchDowngradesToAdvisory(t *testing.T) {
	base := testSnapshot()
	cand := slow(base, "fig4 / Advanced (VML batch)", 0.5)
	cand.Env.CPUModel = "Different CPU"
	report := Check(base, cand, DefaultGate())
	if report.EnvMatch {
		t.Fatal("different CPU models must not be comparable")
	}
	if len(report.Regressions) != 1 {
		t.Fatal("the delta itself is still reported")
	}
	if report.Failed(false) {
		t.Fatal("env mismatch must downgrade regressions to advisory by default")
	}
	if !report.Failed(true) {
		t.Fatal("-strict-env must restore gating")
	}
	if !strings.Contains(report.Table(), "advisory") {
		t.Fatal("table must call out the advisory downgrade")
	}
}

func TestEnvComparable(t *testing.T) {
	a := Env{GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 4, CPUModel: "X"}
	cases := []struct {
		mutate func(*Env)
		want   bool
	}{
		{func(e *Env) {}, true},
		{func(e *Env) { e.CPUModel = "" }, true}, // unknown model: compare the rest
		{func(e *Env) { e.CPUModel = "Y" }, false},
		{func(e *Env) { e.GOMAXPROCS = 8 }, false},
		{func(e *Env) { e.GOARCH = "arm64" }, false},
		{func(e *Env) { e.GoVersion = "go1.99" }, true}, // toolchain drift stays gated
	}
	for i, c := range cases {
		b := a
		c.mutate(&b)
		if got := a.Comparable(b); got != c.want {
			t.Errorf("case %d: Comparable = %v, want %v (%+v)", i, got, c.want, b)
		}
	}
}

// Calibration normalization: a uniformly slower machine (every kernel
// AND the calibration loop at 0.7x) is not a regression; one kernel at
// 0.7x while calibration holds still is.
func TestCalibrationNormalizesUniformDrift(t *testing.T) {
	base := testSnapshot()
	base.CalibOpsPerSec = 1e9

	uniform := testSnapshot()
	uniform.CalibOpsPerSec = 0.7e9
	for i := range uniform.Kernels {
		uniform.Kernels[i].OpsPerSec *= 0.7
		uniform.Kernels[i].OpsMAD *= 0.7
	}
	report := Check(base, uniform, DefaultGate())
	if len(report.Regressions) != 0 || report.Failed(true) {
		t.Fatalf("uniform 30%% drift with matching calibration gated:\n%s", report.Table())
	}
	if report.SpeedFactor > 0.71 || report.SpeedFactor < 0.69 {
		t.Fatalf("SpeedFactor = %g, want ~0.7", report.SpeedFactor)
	}
	for _, d := range report.Deltas {
		if d.Ratio < 0.99 || d.Ratio > 1.01 {
			t.Errorf("%s: drift-corrected ratio %g, want ~1", d.Key, d.Ratio)
		}
	}
	if !strings.Contains(report.Table(), "calibration speed factor") {
		t.Error("table must report the applied speed factor")
	}

	// Same calibration, one kernel halved: a genuine regression.
	const key = "fig4 / Advanced (VML batch)"
	genuine := slow(base, key, 0.5)
	genuine.CalibOpsPerSec = base.CalibOpsPerSec
	report = Check(base, genuine, DefaultGate())
	if len(report.Regressions) != 1 || report.Regressions[0].Key != key {
		t.Fatalf("genuine regression not isolated:\n%s", report.Table())
	}

	// Missing calibration on either side: factor 1, plain comparison.
	nocalib := testSnapshot()
	report = Check(base, nocalib, DefaultGate())
	if report.SpeedFactor < 0.999 || report.SpeedFactor > 1.001 {
		t.Fatalf("missing calibration must yield factor 1, got %g", report.SpeedFactor)
	}
}

func TestCalibrate(t *testing.T) {
	o := Opts{Warmup: 1, Reps: 2, MinDuration: time.Millisecond}
	a := Calibrate(o)
	if a <= 0 {
		t.Fatalf("Calibrate = %g, want positive", a)
	}
	// Two immediate calibrations agree within 3x — a sanity bound loose
	// enough for any CI machine, tight enough to catch unit mistakes.
	b := Calibrate(o)
	if a/b > 3 || b/a > 3 {
		t.Fatalf("calibration unstable: %g vs %g", a, b)
	}
}

func TestReportRenderings(t *testing.T) {
	base := testSnapshot()
	report := Check(base, slow(base, "fig4 / Advanced (VML batch)", 0.5), DefaultGate())
	table := report.Table()
	for _, want := range []string{"REGRESSION", "fig4 / Advanced (VML batch)", "ratio", "1 regression(s)"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	md := report.Markdown()
	for _, want := range []string{"### Benchmark delta", "| kernel |", "**REGRESSION**", "0.500"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

// TestAllocGate pins the allocs/op regression rule: growth beyond
// tolerance+slack fails only on GateAllocs records, is never rescaled
// by calibration, and shrinkage always passes.
func TestAllocGate(t *testing.T) {
	g := DefaultGate()
	base := Record{Experiment: "servepath", Label: "/price", Units: "options/s",
		OpsPerSec: 1e6, OpsMAD: 1e3, AllocsPerOp: 20, GateAllocs: true}

	grown := base
	grown.AllocsPerOp = 25 // +25% > 10% + 0.5 slack
	if !g.AllocRegression(base, grown) {
		t.Fatal("25% allocs/op growth on a gated record must regress")
	}
	within := base
	within.AllocsPerOp = 22.5 // = 20*1.10 + 0.5 exactly: at, not beyond
	if g.AllocRegression(base, within) {
		t.Fatal("growth within tolerance+slack must pass")
	}
	shrunk := base
	shrunk.AllocsPerOp = 10
	if g.AllocRegression(base, shrunk) {
		t.Fatal("an allocation reduction must never regress")
	}
	ungated := grown
	ungated.GateAllocs = false
	if g.AllocRegression(base, ungated) {
		t.Fatal("records without GateAllocs must not be alloc-gated")
	}

	// End to end through Check: the alloc regression fails the report
	// even though throughput is unchanged, and calibration drift must
	// not distort the alloc comparison.
	mk := func(k Record, calib float64) *Snapshot {
		return &Snapshot{Schema: SchemaVersion, Kernels: []Record{k}, CalibOpsPerSec: calib,
			Env: Env{GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64", GOMAXPROCS: 1, NumCPU: 1, CPUModel: "T"}}
	}
	rep := Check(mk(base, 2e9), mk(grown, 1e9), g)
	if len(rep.Regressions) != 1 || !rep.Deltas[0].AllocRegression {
		t.Fatalf("Check missed the alloc regression: %+v", rep.Deltas)
	}
	if rep.Deltas[0].Regression {
		t.Fatal("throughput rule fired on an alloc-only change")
	}
	if !rep.Failed(false) {
		t.Fatal("alloc regression on a matching env must gate")
	}
	if !strings.Contains(rep.Table(), "ALLOC-REGRESSION") {
		t.Fatalf("table lacks the alloc verdict:\n%s", rep.Table())
	}
	ok := Check(mk(base, 1e9), mk(within, 1e9), g)
	if ok.Failed(false) {
		t.Fatal("within-tolerance alloc growth must pass Check")
	}
}
